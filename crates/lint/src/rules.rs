//! The five workspace invariant rules.
//!
//! Each rule takes the parsed [`FileModel`]s and emits [`Finding`]s; the
//! caller filters them through the allowlist and reports the rest. Rules
//! are deny-by-default: anything matched is an error unless a
//! `lint-allow.toml` entry with a reason covers the exact line.

use std::collections::{HashMap, HashSet};

use crate::model::{calls_in, FileModel};

/// One rule violation, attributed to a source line.
#[derive(Debug)]
pub struct Finding {
    pub rule: &'static str,
    pub path: String,
    pub line: usize,
    pub msg: String,
    /// The offending source line (trimmed) — what allowlist patterns match.
    pub line_text: String,
}

fn finding(rule: &'static str, m: &FileModel, pos: usize, msg: String) -> Finding {
    Finding {
        rule,
        path: m.path.clone(),
        line: m.line(pos),
        msg,
        line_text: m.line_text(pos).to_string(),
    }
}

/// Run every rule.
pub fn run_all(files: &[FileModel]) -> Vec<Finding> {
    let mut out = Vec::new();
    out.extend(tx_pairing(files));
    out.extend(zero_copy(files));
    out.extend(trace_propagation(files));
    out.extend(lock_order(files));
    out.extend(panic_hygiene(files));
    out.extend(result_hygiene(files));
    out.extend(ownership_release(files));
    out.extend(simd_fallback(files));
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

// ---- rule 1: tx-pairing ---------------------------------------------------

/// Files allowed to use the raw begin/end transaction API: the vector
/// implementation itself and the RAII guard built on it.
const TX_EXEMPT: &[&str] = &["crates/core/src/vector.rs", "crates/core/src/txguard.rs"];

const TX_BEGIN: &[&str] =
    &[".tx_begin(", ".try_tx_begin(", ".tx_begin_collective(", ".try_tx_begin_collective("];
const TX_END: &[&str] = &[".tx_end(", ".try_tx_end("];

/// Raw `tx_begin`/`tx_end` calls are forbidden outside the RAII guard
/// module; where they may still appear (test code), every begin must be
/// matched by an end in the same function.
pub fn tx_pairing(files: &[FileModel]) -> Vec<Finding> {
    let mut out = Vec::new();
    for m in files {
        if TX_EXEMPT.iter().any(|e| m.path.ends_with(e)) {
            continue;
        }
        let mut per_fn: HashMap<usize, (usize, i64)> = HashMap::new();
        for (pats, delta) in [(TX_BEGIN, 1i64), (TX_END, -1i64)] {
            for pat in pats {
                for pos in m.occurrences(pat).collect::<Vec<_>>() {
                    if !m.in_test(pos) {
                        out.push(finding(
                            "tx-pairing",
                            m,
                            pos,
                            format!(
                                "raw `{}` outside the RAII guard module — use `MmVec::tx()` / `TxScope`",
                                pat.trim_start_matches('.').trim_end_matches('(')
                            ),
                        ));
                    }
                    if let Some(f) = m.enclosing_fn(pos) {
                        let e = per_fn.entry(f.body.start).or_insert((pos, 0));
                        e.1 += delta;
                    }
                }
            }
        }
        for (body_start, (first_pos, balance)) in per_fn {
            if balance != 0 {
                let name = m
                    .enclosing_fn(body_start)
                    .map(|f| f.name.clone())
                    .unwrap_or_else(|| "?".into());
                out.push(finding(
                    "tx-pairing",
                    m,
                    first_pos,
                    format!(
                        "fn `{name}` has unbalanced raw tx calls ({:+} begins vs ends)",
                        balance
                    ),
                ));
            }
        }
    }
    out
}

// ---- rule 2: zero-copy ----------------------------------------------------

/// Modules on the demand-fault / commit hot path where byte copies must be
/// explicit, audited, and counted.
const HOT_MODULES: &[&str] = &[
    "crates/core/src/pcache.rs",
    "crates/core/src/runtime/",
    "crates/tiered/src/dmsh.rs",
    "crates/cluster/src/comm.rs",
];

const COPY_PATTERNS: &[&str] = &[".to_vec()", "Vec::from(", "copy_from_slice(", ".promote()"];

/// Copying constructs are banned in hot-path modules except allowlisted
/// sites with a reason (typically: the copy is counted in
/// `runtime.bytes_copied`).
pub fn zero_copy(files: &[FileModel]) -> Vec<Finding> {
    let mut out = Vec::new();
    for m in files {
        if !HOT_MODULES.iter().any(|h| m.path.contains(h)) {
            continue;
        }
        for pat in COPY_PATTERNS {
            for pos in m.occurrences(pat).collect::<Vec<_>>() {
                if m.in_test(pos) {
                    continue;
                }
                out.push(finding(
                    "zero-copy",
                    m,
                    pos,
                    format!(
                        "`{pat}` in hot-path module — copies here must be allowlisted with a reason"
                    ),
                ));
            }
        }
    }
    out
}

// ---- rule 3: trace-propagation --------------------------------------------

/// Name fragments identifying fault/commit/flush-path entry points.
const TRACED_NAMES: &[&str] =
    &["fault", "commit", "flush", "read_page", "write_page", "get_range", "put_range", "stage_"];

/// Crates whose public fault-path API must thread a `TraceCtx`.
const TRACED_CRATES: &[&str] = &["crates/core/", "crates/tiered/", "crates/cluster/"];

/// The multi-tenant serving crate: fault paths entered from here must
/// carry tenant attribution on top of trace context.
const TENANT_CRATE: &str = "crates/serve/";

/// Public fault/commit/flush-path functions must accept a `TraceCtx`
/// parameter, and `TraceCtx::NONE` (which severs the causal chain) may
/// only appear at allowlisted sites. In `crates/serve/` the same name
/// classes must additionally carry a `TenantId` (an unattributed fault in
/// the serving runtime charges nobody's budget), and every
/// `VecOptions::new()` builder chain must attach a `.tenant(..)`.
pub fn trace_propagation(files: &[FileModel]) -> Vec<Finding> {
    let mut out = Vec::new();
    for m in files {
        if m.path.contains("/tests/") || m.path.contains("/benches/") {
            continue;
        }
        let core_scope = TRACED_CRATES.iter().any(|c| m.path.contains(c));
        let serve_scope = m.path.contains(TENANT_CRATE);
        if !core_scope && !serve_scope {
            continue;
        }
        for f in &m.fns {
            if !f.is_pub || f.body.is_empty() || m.in_test(f.body.start) {
                continue;
            }
            let on_path = TRACED_NAMES.iter().any(|n| f.name.contains(n));
            if core_scope && on_path && !f.params.contains("TraceCtx") {
                out.push(Finding {
                    rule: "trace-propagation",
                    path: m.path.clone(),
                    line: f.line,
                    msg: format!(
                        "pub fn `{}` matches a fault/commit/flush-path name but takes no TraceCtx",
                        f.name
                    ),
                    line_text: format!("fn {}", f.name),
                });
            }
            if serve_scope && on_path && !f.params.contains("TenantId") {
                out.push(Finding {
                    rule: "trace-propagation",
                    path: m.path.clone(),
                    line: f.line,
                    msg: format!(
                        "pub fn `{}` enters the fault path from mm-serve but takes no TenantId \
                         — unattributed faults charge nobody's budget",
                        f.name
                    ),
                    line_text: format!("fn {}", f.name),
                });
            }
        }
        if core_scope {
            for pos in m.occurrences("TraceCtx::NONE").collect::<Vec<_>>() {
                if m.in_test(pos) {
                    continue;
                }
                out.push(finding(
                    "trace-propagation",
                    m,
                    pos,
                    "`TraceCtx::NONE` severs the causal chain — allowlist-only".to_string(),
                ));
            }
        }
        if serve_scope {
            for pos in m.occurrences("VecOptions::new()").collect::<Vec<_>>() {
                if m.in_test(pos) {
                    continue;
                }
                // The builder chain runs to the end of the statement; a
                // tenant-less open in the serving crate is unaccounted.
                let rest = &m.scrubbed[pos..];
                let stmt = &rest[..rest.find(';').map_or(rest.len(), |i| i + 1)];
                if !stmt.contains(".tenant(") {
                    out.push(finding(
                        "trace-propagation",
                        m,
                        pos,
                        "`VecOptions::new()` in mm-serve without `.tenant(..)` — every serving \
                         vector must be attributed to a registered tenant"
                            .to_string(),
                    ));
                }
            }
        }
    }
    out
}

// ---- rule 4: lock-order ---------------------------------------------------

/// The declared partial order over workspace locks (mirrors
/// `megammap_telemetry::LockRank`). Receivers are matched by the last
/// keyword on the line before `.lock()`.
const LOCK_RANKS: &[(&str, &str, u8, &str)] = &[
    ("crates/core/src/vector.rs", "state", 10, "VecState"),
    ("", "policy", 20, "Policy"),
    ("crates/core/src/runtime/", "vectors", 30, "RtMeta"),
    ("crates/core/src/runtime/", "apply_lock", 40, "ApplyShard"),
    ("crates/core/src/runtime/directory.rs", "shards", 48, "DirShard"),
    ("crates/tiered/src/dmsh.rs", "meta", 50, "DmshMeta"),
    ("crates/tiered/src/dmsh.rs", "store", 60, "DmshStore"),
    ("crates/cluster/src/mailbox.rs", "queue", 70, "Mailbox"),
    ("crates/sim/src/resource.rs", "reservations", 80, "Resource"),
];

/// Guard-returning helpers that acquire a ranked lock internally.
const LOCK_HELPERS: &[(&str, u8, &str)] =
    &[(".lock_state()", 10, "VecState"), (".lock_meta()", 50, "DmshMeta")];

/// Rank of the `.lock()` at `pos`, from the last ranked keyword between
/// the start of the *statement* and the call. Scanning back only to the
/// line start would miss multi-line chained receivers
/// (`self.tiers[i]\n  .store\n  .lock()`), silently exempting the call.
pub(crate) fn rank_of_lock(m: &FileModel, pos: usize) -> Option<(u8, &'static str)> {
    let stmt_start = m.scrubbed[..pos].rfind([';', '{', '}']).map_or(0, |i| i + 1);
    let recv = &m.scrubbed[stmt_start..pos];
    let mut best: Option<(usize, u8, &'static str)> = None;
    for (path, kw, rank, name) in LOCK_RANKS {
        if !path.is_empty() && !m.path.contains(path) {
            continue;
        }
        if let Some(at) = recv.rfind(kw) {
            if best.is_none_or(|(b, _, _)| at > b) {
                best = Some((at, *rank, name));
            }
        }
    }
    best.map(|(_, r, n)| (r, n))
}

#[derive(Clone, Copy)]
enum LockEv {
    /// rank, rank name, transient (a chained temporary guard, released at
    /// the end of the statement).
    Acquire(u8, &'static str, bool),
    /// An explicit `drop(x)`: releases the most recent held guard.
    Drop,
}

/// Statically check that ranked locks nest in ascending rank order within
/// each function body (brace-depth scoping). Cross-function nesting is
/// covered by the runtime assertion layer in
/// `megammap_telemetry::lockorder`.
pub fn lock_order(files: &[FileModel]) -> Vec<Finding> {
    let mut out = Vec::new();
    for m in files {
        let mut events: Vec<(usize, LockEv)> = Vec::new();
        for pos in m.occurrences(".lock()").collect::<Vec<_>>() {
            if m.in_test(pos) {
                continue;
            }
            if let Some((rank, name)) = rank_of_lock(m, pos) {
                let after = pos + ".lock()".len();
                let transient = m.scrubbed.as_bytes().get(after) == Some(&b'.');
                events.push((pos, LockEv::Acquire(rank, name, transient)));
            }
        }
        for (pat, rank, name) in LOCK_HELPERS {
            for pos in m.occurrences(pat).collect::<Vec<_>>() {
                if !m.in_test(pos) {
                    events.push((pos, LockEv::Acquire(*rank, name, false)));
                }
            }
        }
        for pos in m.occurrences("drop(").collect::<Vec<_>>() {
            if !m.in_test(pos) {
                events.push((pos, LockEv::Drop));
            }
        }
        events.sort_by_key(|(p, _)| *p);
        if events.is_empty() {
            continue;
        }
        for f in &m.fns {
            let evs: Vec<_> = events
                .iter()
                .filter(|(p, _)| {
                    f.body.contains(p)
                        && m.enclosing_fn(*p).map(|g| g.body.start) == Some(f.body.start)
                })
                .collect();
            if evs.is_empty() {
                continue;
            }
            let b = m.scrubbed.as_bytes();
            let mut depth = 0i32;
            let mut held: Vec<(i32, u8, &'static str)> = Vec::new();
            let mut ei = 0usize;
            for i in f.body.clone() {
                while ei < evs.len() && evs[ei].0 == i {
                    match evs[ei].1 {
                        LockEv::Acquire(rank, name, transient) => {
                            if let Some(&(_, _, topname)) =
                                held.iter().rev().find(|(_, r, _)| *r >= rank)
                            {
                                out.push(finding(
                                    "lock-order",
                                    m,
                                    i,
                                    format!(
                                        "acquiring {name} (rank {rank}) while {topname} is held — ranks must strictly ascend"
                                    ),
                                ));
                            }
                            if !transient {
                                held.push((depth, rank, name));
                            }
                        }
                        LockEv::Drop => {
                            held.pop();
                        }
                    }
                    ei += 1;
                }
                match b.get(i) {
                    Some(b'{') => depth += 1,
                    Some(b'}') => {
                        depth -= 1;
                        held.retain(|(d, _, _)| *d < depth);
                    }
                    _ => {}
                }
            }
        }
    }
    out
}

// ---- rule 5: panic-hygiene ------------------------------------------------

/// Entry points of the demand-fault / commit path.
const FAULT_ROOTS: &[&str] = &[
    "page_for_read",
    "page_for_write",
    "try_load",
    "try_store",
    "try_read_into",
    "try_write_slice",
    "try_append",
    "commit_dirty",
    "evict_page",
    "make_room",
    "read_page_traced",
    "read_page_run_traced",
    "write_page_diff_traced",
    "write_page_full_traced",
    "get_traced",
    "put_range",
    "get_range",
];

/// Ubiquitous method names excluded from call-graph edges: a name-based
/// graph would otherwise connect everything to everything through
/// std-alike helpers.
const EDGE_STOPLIST: &[&str] = &[
    "new", "len", "is_empty", "clone", "default", "fmt", "from", "into", "eq", "cmp", "hash",
    "drop", "next", "iter", "min", "max", "name", "now",
    // These collide with std methods used everywhere (str::split, Mutex
    // lock, atomic load/store, Vec::append); the workspace fns of the same
    // name are public wrappers that are not themselves on the fault path.
    "split", "lock", "load", "store", "append",
];

pub(crate) const PANIC_TOKENS: &[&str] =
    &[".unwrap()", ".expect(", "panic!(", "unreachable!(", "todo!(", "unimplemented!("];

/// Crates whose functions participate in the fault-path call graph.
const PANIC_CRATES: &[&str] = &[
    "crates/sim/src/",
    "crates/cluster/src/",
    "crates/tiered/src/",
    "crates/core/src/",
    "crates/telemetry/src/",
];

/// No `unwrap`/`expect`/`panic!` may be reachable from the demand-fault
/// path: a panic mid-fault poisons pcache locks and kills the worker. The
/// call graph is name-based and conservative; false positives get
/// allowlisted with the reason they cannot fire.
pub fn panic_hygiene(files: &[FileModel]) -> Vec<Finding> {
    // fn name -> list of (file idx, fn idx)
    let mut by_name: HashMap<&str, Vec<(usize, usize)>> = HashMap::new();
    for (fi, m) in files.iter().enumerate() {
        if !PANIC_CRATES.iter().any(|c| m.path.contains(c)) {
            continue;
        }
        for (gi, f) in m.fns.iter().enumerate() {
            if f.body.is_empty() || m.in_test(f.body.start) {
                continue;
            }
            by_name.entry(f.name.as_str()).or_default().push((fi, gi));
        }
    }
    // BFS from roots over name edges.
    let mut reach: HashSet<(usize, usize)> = HashSet::new();
    let mut via: HashMap<(usize, usize), String> = HashMap::new();
    let mut queue: Vec<(usize, usize)> = Vec::new();
    for root in FAULT_ROOTS {
        for &node in by_name.get(root).into_iter().flatten() {
            if reach.insert(node) {
                via.insert(node, (*root).to_string());
                queue.push(node);
            }
        }
    }
    while let Some((fi, gi)) = queue.pop() {
        let m = &files[fi];
        let f = &m.fns[gi];
        let chain = via.get(&(fi, gi)).cloned().unwrap_or_default();
        for (callee, _) in calls_in(&m.scrubbed, f.body.clone()) {
            if EDGE_STOPLIST.contains(&callee.as_str()) || callee == f.name {
                continue;
            }
            for &node in by_name.get(callee.as_str()).into_iter().flatten() {
                if reach.insert(node) {
                    via.insert(node, format!("{chain} -> {callee}"));
                    queue.push(node);
                }
            }
        }
    }
    // Scan reachable bodies for panic tokens.
    let mut out = Vec::new();
    for &(fi, gi) in &reach {
        let m = &files[fi];
        let f = &m.fns[gi];
        for tok in PANIC_TOKENS {
            let mut from = f.body.start;
            while let Some(rel) = m.scrubbed[from..f.body.end].find(tok) {
                let pos = from + rel;
                from = pos + tok.len();
                if m.in_test(pos) {
                    continue;
                }
                out.push(finding(
                    "panic-hygiene",
                    m,
                    pos,
                    format!(
                        "`{}` reachable from the demand-fault path (via {})",
                        tok.trim_start_matches('.').trim_end_matches('('),
                        via.get(&(fi, gi)).map(String::as_str).unwrap_or("?"),
                    ),
                ));
            }
        }
    }
    out
}

// ---- rule 6: result-hygiene -----------------------------------------------

/// Recovery/fault-path modules where a silently discarded `Result` hides a
/// swallowed failure: the chaos scenarios only prove recovery works if
/// every error either propagates, is handled, or is counted.
const RESULT_MODULES: &[&str] = &[
    "crates/core/src/runtime/",
    "crates/tiered/src/dmsh.rs",
    "crates/sim/src/fault.rs",
    "crates/sim/src/net.rs",
    "crates/cluster/src/dlock.rs",
    "crates/cluster/src/comm.rs",
    "crates/chaos/src/",
];

/// `let _ =` is banned in recovery/fault-path modules (outside tests): it
/// silently discards whatever the call returned — including the `Result`
/// of a retry, replay, or re-homing step. Bind the error (`if let
/// Err(_e)`) and count it, propagate it, or use an explicit, allowlisted
/// `.ok()` with a reason.
pub fn result_hygiene(files: &[FileModel]) -> Vec<Finding> {
    let mut out = Vec::new();
    for m in files {
        if !RESULT_MODULES.iter().any(|h| m.path.contains(h)) {
            continue;
        }
        for pos in m.occurrences("let _ = ").collect::<Vec<_>>() {
            if m.in_test(pos) {
                continue;
            }
            out.push(finding(
                "result-hygiene",
                m,
                pos,
                "silent `let _ =` discard in a recovery/fault-path module — propagate the \
                 error, handle it with `if let Err(_e)` + a counter, or allowlist an \
                 explicit `.ok()` with a reason"
                    .to_string(),
            ));
        }
    }
    out
}

// ---- rule 7: ownership-release --------------------------------------------

/// Modules holding the shard handoff / ownership-transfer protocol. An
/// early return between `claim_owner` and the matching release leaves a
/// page's owner epoch claimed forever: every later fault on it takes the
/// slow transfer path and the standing owner's fast path never re-arms.
const OWNERSHIP_MODULES: &[&str] =
    &["crates/core/src/runtime/shard.rs", "crates/core/src/runtime/directory.rs"];

/// Function-name keywords marking fns that move an owner epoch.
const OWNERSHIP_FN_KEYWORDS: &[&str] = &["claim", "owner", "release", "transfer", "handoff"];

/// Bare `?` is banned in ownership-transfer fns in the shard handoff
/// modules (outside tests): the early return skips the release/transfer
/// on the error path and leaks the owned epoch. Keep these fns total
/// (return enum outcomes), or match the error and release before
/// propagating.
pub fn ownership_release(files: &[FileModel]) -> Vec<Finding> {
    let mut out = Vec::new();
    for m in files {
        if !OWNERSHIP_MODULES.iter().any(|h| m.path.ends_with(h)) {
            continue;
        }
        for pos in m.occurrences("?").collect::<Vec<_>>() {
            if m.in_test(pos) {
                continue;
            }
            let Some(f) = m.enclosing_fn(pos) else { continue };
            if !OWNERSHIP_FN_KEYWORDS.iter().any(|k| f.name.contains(k)) {
                continue;
            }
            out.push(finding(
                "ownership-release",
                m,
                pos,
                format!(
                    "bare `?` in ownership-transfer fn `{}` — an early return here leaks \
                     the owned epoch; make the fn total or release ownership on the \
                     error path before propagating",
                    f.name
                ),
            ));
        }
    }
    out
}

// ---- rule 8: simd-fallback ------------------------------------------------

/// Crates where SIMD kernels must carry scalar twins and guarded dispatch.
const SIMD_MODULES: &[&str] = &["crates/ann/"];

/// Every `#[target_feature(enable = "avx2")]` fn must (a) have a
/// same-arithmetic scalar twin named `{base}_scalar` (base strips a
/// trailing `_avx2`) in the same file, and (b) be called from exactly one
/// non-test site, whose enclosing fn gates it with
/// `is_x86_feature_detected!`. An unguarded call is UB on pre-AVX2 hosts;
/// a missing twin means non-x86 builds silently lose the kernel.
pub fn simd_fallback(files: &[FileModel]) -> Vec<Finding> {
    let mut out = Vec::new();
    for m in files {
        if !SIMD_MODULES.iter().any(|h| m.path.contains(h)) {
            continue;
        }
        for pos in m.occurrences("#[target_feature(").collect::<Vec<_>>() {
            // The feature name is a string literal, blanked in scrubbed
            // text — read it from the raw source.
            let attr_end = m.src[pos..].find(")]").map_or(m.src.len(), |i| pos + i);
            if !m.src[pos..attr_end].contains("avx2") {
                continue;
            }
            // The fn this attribute annotates: the next parsed fn item.
            let Some(f) = m.fns.iter().filter(|f| f.body.start > pos).min_by_key(|f| f.body.start)
            else {
                continue;
            };
            let base = f.name.strip_suffix("_avx2").unwrap_or(&f.name);
            let sibling = format!("{base}_scalar");
            if !m.fns.iter().any(|s| s.name == sibling) {
                out.push(finding(
                    "simd-fallback",
                    m,
                    pos,
                    format!(
                        "avx2 fn `{}` has no scalar twin `{sibling}` in this file — every \
                         target_feature kernel needs a same-arithmetic fallback",
                        f.name
                    ),
                ));
            }
            // Call sites: `name(` occurrences that are neither the
            // definition nor test code.
            let needle = format!("{}(", f.name);
            let mut call_sites = Vec::new();
            for cpos in m.occurrences(&needle).collect::<Vec<_>>() {
                if cpos > 0 {
                    let c = m.scrubbed.as_bytes()[cpos - 1];
                    if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' {
                        continue; // longer identifier or method call
                    }
                }
                if m.scrubbed[..cpos].trim_end().ends_with("fn") {
                    continue; // the definition itself
                }
                if m.in_test(cpos) {
                    continue;
                }
                call_sites.push(cpos);
            }
            if call_sites.len() != 1 {
                out.push(finding(
                    "simd-fallback",
                    m,
                    call_sites.first().copied().unwrap_or(pos),
                    format!(
                        "avx2 fn `{}` must have exactly one non-test call site (the guarded \
                         dispatcher), found {}",
                        f.name,
                        call_sites.len()
                    ),
                ));
                continue;
            }
            let c = call_sites[0];
            let guarded = m
                .enclosing_fn(c)
                .is_some_and(|g| m.scrubbed[g.body.clone()].contains("is_x86_feature_detected!"));
            if !guarded {
                out.push(finding(
                    "simd-fallback",
                    m,
                    c,
                    format!(
                        "call to avx2 fn `{}` is not inside a fn that checks \
                         `is_x86_feature_detected!` — UB on hosts without AVX2",
                        f.name
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> FileModel {
        FileModel::parse(path, src)
    }

    #[test]
    fn seeded_raw_tx_call_is_flagged() {
        let m = file(
            "crates/workloads/src/x.rs",
            "fn f(v: &V, p: &P) { let t = v.tx_begin(p); v.tx_end(p, t); }",
        );
        let f = tx_pairing(&[m]);
        assert_eq!(f.iter().filter(|x| x.msg.contains("raw")).count(), 2);
    }

    #[test]
    fn unbalanced_begin_is_flagged_even_in_tests() {
        let m = file(
            "crates/core/tests/t.rs",
            "fn f(v: &V, p: &P) { let t = v.tx_begin(p); let u = v.tx_begin(p); v.tx_end(p, t); }",
        );
        let f = tx_pairing(&[m]);
        assert!(f.iter().any(|x| x.msg.contains("unbalanced")), "{f:?}");
    }

    #[test]
    fn guard_module_is_exempt() {
        let m = file(
            "crates/core/src/txguard.rs",
            "fn f(v: &V, p: &P) { let h = v.try_tx_begin(p); v.try_tx_end(p, h); }",
        );
        assert!(tx_pairing(&[m]).is_empty());
    }

    #[test]
    fn seeded_to_vec_in_hot_module_is_flagged() {
        let m = file("crates/core/src/pcache.rs", "fn f(b: &[u8]) -> Vec<u8> { b.to_vec() }");
        let f = zero_copy(&[m]);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains(".to_vec()"));
    }

    #[test]
    fn to_vec_outside_hot_modules_is_fine() {
        let m = file("crates/formats/src/x.rs", "fn f(b: &[u8]) -> Vec<u8> { b.to_vec() }");
        assert!(zero_copy(&[m]).is_empty());
    }

    #[test]
    fn seeded_pagebuf_promotion_is_flagged() {
        let m = file("crates/core/src/runtime/mod.rs", "fn f(b: &mut PageBuf) { b.promote(); }");
        assert_eq!(zero_copy(&[m]).len(), 1);
    }

    #[test]
    fn untraced_fault_path_pub_fn_is_flagged() {
        let m = file(
            "crates/core/src/runtime/mod.rs",
            "pub fn read_page(&self, now: u64) -> Bytes { todo(now) }",
        );
        let f = trace_propagation(&[m]);
        assert!(f.iter().any(|x| x.msg.contains("read_page")), "{f:?}");
    }

    #[test]
    fn traced_fault_path_fn_passes() {
        let m = file(
            "crates/core/src/runtime/mod.rs",
            "pub fn read_page_traced(&self, now: u64, ctx: TraceCtx) -> Bytes { go(now, ctx) }",
        );
        assert!(trace_propagation(&[m]).is_empty());
    }

    #[test]
    fn trace_none_is_allowlist_only() {
        let m = file(
            "crates/tiered/src/dmsh.rs",
            "pub fn quiet(&self) { self.get_traced(0, id, TraceCtx::NONE); }",
        );
        let f = trace_propagation(&[m]);
        assert!(f.iter().any(|x| x.msg.contains("NONE")));
    }

    #[test]
    fn serve_fault_path_without_tenant_is_flagged() {
        let m = file(
            "crates/serve/src/admission.rs",
            "pub fn fault_probe(&self, ctx: TraceCtx) -> u64 { self.go(ctx) }",
        );
        let f = trace_propagation(&[m]);
        assert!(f.iter().any(|x| x.msg.contains("TenantId")), "{f:?}");
    }

    #[test]
    fn serve_fault_path_with_tenant_passes() {
        let m = file(
            "crates/serve/src/admission.rs",
            "pub fn fault_probe(&self, tenant: TenantId) -> u64 { self.go(tenant) }",
        );
        assert!(trace_propagation(&[m]).is_empty());
    }

    #[test]
    fn serve_vec_open_without_tenant_is_flagged() {
        let m = file(
            "crates/serve/src/scenario.rs",
            "fn open_it(rt: &Runtime) { let o = VecOptions::new().len(8).pcache(4096); go(o); }",
        );
        let f = trace_propagation(&[m]);
        assert!(f.iter().any(|x| x.msg.contains(".tenant(")), "{f:?}");
    }

    #[test]
    fn serve_vec_open_with_tenant_passes() {
        let m = file(
            "crates/serve/src/scenario.rs",
            "fn open_it(rt: &Runtime, id: TenantId) {\n    let o = VecOptions::new()\n        .len(8)\n        .tenant(id);\n    go(o);\n}",
        );
        assert!(trace_propagation(&[m]).is_empty());
    }

    #[test]
    fn vec_open_outside_serve_needs_no_tenant() {
        let m = file(
            "crates/workloads/src/kmeans.rs",
            "fn open_it(rt: &Runtime) { let o = VecOptions::new().len(8); go(o); }",
        );
        assert!(trace_propagation(&[m]).is_empty());
    }

    #[test]
    fn descending_lock_nesting_is_flagged() {
        let m = file(
            "crates/tiered/src/dmsh.rs",
            "fn f(&self) { let s = self.tiers[0].store.lock(); let m = self.meta.lock(); }",
        );
        let f = lock_order(&[m]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("DmshMeta"));
    }

    #[test]
    fn ascending_lock_nesting_passes() {
        let m = file(
            "crates/tiered/src/dmsh.rs",
            "fn f(&self) { let m = self.meta.lock(); let s = self.tiers[0].store.lock(); }",
        );
        assert!(lock_order(&[m]).is_empty());
    }

    #[test]
    fn scoped_release_resets_the_order() {
        let m = file(
            "crates/tiered/src/dmsh.rs",
            "fn f(&self) { { let s = self.tiers[0].store.lock(); } let m = self.meta.lock(); }",
        );
        assert!(lock_order(&[m]).is_empty());
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let m = file(
            "crates/tiered/src/dmsh.rs",
            "fn f(&self) { let s = self.tiers[0].store.lock(); drop(s); let m = self.meta.lock(); }",
        );
        assert!(lock_order(&[m]).is_empty());
    }

    #[test]
    fn multi_line_chained_receiver_is_still_ranked() {
        // The ranked keyword sits two lines above the `.lock()` call; the
        // old line-local scan missed it and silently exempted the site.
        let m = file(
            "crates/tiered/src/dmsh.rs",
            "fn f(&self) {\n    let s = self.tiers[0]\n        .store\n        .lock();\n    let m = self.meta.lock();\n}",
        );
        let f = lock_order(&[m]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("DmshMeta"));
        assert!(f[0].msg.contains("DmshStore"));
    }

    #[test]
    fn statement_scan_does_not_cross_statement_boundaries() {
        // `store` in the *previous statement* must not rank this `.lock()`.
        let m = file(
            "crates/tiered/src/dmsh.rs",
            "fn f(&self) {\n    let x = self.tiers[0].store.len();\n    let g = self.foo.lock();\n}",
        );
        assert!(lock_order(&[m]).is_empty());
    }

    #[test]
    fn chained_temporary_guard_is_transient() {
        let m = file(
            "crates/tiered/src/dmsh.rs",
            "fn f(&self) { self.tiers[0].store.lock().insert(id, d); let m = self.meta.lock(); }",
        );
        assert!(lock_order(&[m]).is_empty());
    }

    #[test]
    fn seeded_unwrap_on_fault_path_is_flagged() {
        let m = file(
            "crates/core/src/vector.rs",
            "fn page_for_read(&self) { self.helper_x(); }\nfn helper_x(&self) { self.inner.unwrap(); }",
        );
        let f = panic_hygiene(&[m]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("via page_for_read -> helper_x"));
    }

    #[test]
    fn unwrap_off_the_fault_path_is_fine() {
        let m =
            file("crates/core/src/config.rs", "pub fn validate(&self) { self.check.unwrap(); }");
        assert!(panic_hygiene(&[m]).is_empty());
    }

    #[test]
    fn test_code_is_exempt_everywhere() {
        let m = file(
            "crates/core/src/pcache.rs",
            "#[cfg(test)]\nmod tests { fn f(b: &[u8]) { b.to_vec(); } }",
        );
        assert!(zero_copy(&[m]).is_empty());
    }

    #[test]
    fn seeded_silent_discard_in_recovery_module_is_flagged() {
        let m = file(
            "crates/core/src/runtime/stager.rs",
            "fn f(rt: &Runtime) { let _ = rt.flush_all(); }",
        );
        let f = result_hygiene(&[m]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("silent"));
    }

    #[test]
    fn silent_discard_outside_recovery_modules_is_fine() {
        let m = file("crates/formats/src/posix.rs", "fn f(x: F) { let _ = x.sync(); }");
        assert!(result_hygiene(&[m]).is_empty());
    }

    #[test]
    fn named_bindings_and_tests_pass_result_hygiene() {
        let m = file(
            "crates/core/src/runtime/mod.rs",
            "fn f(g: &G) { let _lo = g.acquire(); }\n#[cfg(test)]\nmod tests { fn t(x: F) { let _ = x.go(); } }",
        );
        assert!(result_hygiene(&[m]).is_empty());
    }

    #[test]
    fn seeded_try_in_ownership_fn_is_flagged() {
        let m = file(
            "crates/core/src/runtime/shard.rs",
            "fn claim_for_write(d: &Dir) -> Result<OwnerClaim> { let loc = d.get(id)?; Ok(loc) }",
        );
        let f = ownership_release(&[m]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("claim_for_write"));
    }

    #[test]
    fn total_ownership_fn_passes() {
        let m = file(
            "crates/core/src/runtime/shard.rs",
            "fn release_for_drain(d: &Dir, id: BlobId, node: usize) { d.release_owner(id, node); }",
        );
        assert!(ownership_release(&[m]).is_empty());
    }

    #[test]
    fn try_outside_ownership_fns_is_fine() {
        let m = file(
            "crates/core/src/runtime/directory.rs",
            "fn nearest_copy(&self, id: BlobId) -> Option<usize> { let loc = self.get(id)?; Some(loc.home) }",
        );
        assert!(ownership_release(&[m]).is_empty());
    }

    #[test]
    fn ownership_named_fn_outside_handoff_modules_is_fine() {
        let m = file(
            "crates/core/src/vector.rs",
            "fn owner_hint(&self) -> Result<usize> { let n = self.rt.home()?; Ok(n) }",
        );
        assert!(ownership_release(&[m]).is_empty());
    }

    #[test]
    fn ownership_rule_skips_test_code() {
        let m = file(
            "crates/core/src/runtime/shard.rs",
            "#[cfg(test)]\nmod tests { fn claim_it(d: &Dir) -> Result<()> { d.claim(id)?; Ok(()) } }",
        );
        assert!(ownership_release(&[m]).is_empty());
    }

    const SIMD_OK: &str = r#"
#[target_feature(enable = "avx2")]
unsafe fn l2_avx2(a: &[f32], b: &[f32]) -> f32 { go(a, b) }
fn l2_scalar(a: &[f32], b: &[f32]) -> f32 { go(a, b) }
pub fn l2(a: &[f32], b: &[f32]) -> f32 {
    if is_x86_feature_detected!("avx2") { return unsafe { l2_avx2(a, b) }; }
    l2_scalar(a, b)
}
"#;

    #[test]
    fn guarded_avx2_kernel_with_scalar_twin_passes() {
        let m = file("crates/ann/src/kernels.rs", SIMD_OK);
        assert!(simd_fallback(&[m]).is_empty());
        // The rule is scoped to the ann crate: the same shape elsewhere,
        // even broken, is out of jurisdiction.
        let elsewhere =
            file("crates/core/src/vector.rs", &SIMD_OK.replace("fn l2_scalar", "fn l2_other"));
        assert!(simd_fallback(&[elsewhere]).is_empty());
    }

    #[test]
    fn avx2_kernel_without_scalar_twin_is_flagged() {
        let m = file(
            "crates/ann/src/kernels.rs",
            &SIMD_OK
                .replace("fn l2_scalar", "fn l2_fallback")
                .replace("l2_scalar(a, b)", "l2_fallback(a, b)"),
        );
        let f = simd_fallback(&[m]);
        assert!(f.iter().any(|x| x.msg.contains("no scalar twin `l2_scalar`")), "{f:?}");
    }

    #[test]
    fn unguarded_or_duplicated_avx2_call_site_is_flagged() {
        // Call site whose enclosing fn never checks the CPU feature.
        let unguarded = file(
            "crates/ann/src/kernels.rs",
            &SIMD_OK.replace(
                "if is_x86_feature_detected!(\"avx2\") { return unsafe { l2_avx2(a, b) }; }",
                "return unsafe { l2_avx2(a, b) };",
            ),
        );
        let f = simd_fallback(&[unguarded]);
        assert!(f.iter().any(|x| x.msg.contains("is_x86_feature_detected!")), "{f:?}");

        // A second non-test call site bypasses the dispatcher.
        let dup = file(
            "crates/ann/src/kernels.rs",
            &format!("{SIMD_OK}\npub fn sneaky(a: &[f32], b: &[f32]) -> f32 {{ unsafe {{ l2_avx2(a, b) }} }}"),
        );
        let f = simd_fallback(&[dup]);
        assert!(f.iter().any(|x| x.msg.contains("exactly one non-test call site")), "{f:?}");
    }
}
