//! `mm-lint deny`: license and duplicate-version checks.
//!
//! The workspace is fully offline (every dependency is an in-tree path
//! crate), so `cargo deny` itself is unavailable; this subcommand covers
//! the two checks the project needs from it, against the same kind of
//! checked-in policy file (`deny.toml`):
//!
//! ```toml
//! [licenses]
//! allow = ["MIT", "Apache-2.0", "MIT OR Apache-2.0"]
//!
//! [bans]
//! multiple-versions = "deny"
//! ```

use std::collections::BTreeMap;

/// Policy parsed from `deny.toml`.
pub struct DenyPolicy {
    pub licenses_allow: Vec<String>,
    pub deny_multiple_versions: bool,
}

impl DenyPolicy {
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut section = String::new();
        let mut allow = Vec::new();
        let mut multiple = true;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lno = idx + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line.starts_with('[') {
                section = line.trim_matches(['[', ']']).to_string();
                continue;
            }
            let Some((key, val)) = line.split_once('=') else {
                return Err(format!("deny.toml:{lno}: expected `key = value`"));
            };
            match (section.as_str(), key.trim()) {
                ("licenses", "allow") => {
                    let inner = val
                        .trim()
                        .strip_prefix('[')
                        .and_then(|v| v.strip_suffix(']'))
                        .ok_or_else(|| format!("deny.toml:{lno}: allow must be a [..] list"))?;
                    for item in inner.split(',') {
                        let item = item.trim().trim_matches('"');
                        if !item.is_empty() {
                            allow.push(item.to_string());
                        }
                    }
                }
                ("bans", "multiple-versions") => {
                    multiple = val.trim().trim_matches('"') == "deny";
                }
                (s, k) => {
                    return Err(format!("deny.toml:{lno}: unknown key `{k}` in section `[{s}]`"));
                }
            }
        }
        if allow.is_empty() {
            return Err("deny.toml: [licenses] allow list is empty".into());
        }
        Ok(DenyPolicy { licenses_allow: allow, deny_multiple_versions: multiple })
    }
}

/// (name, version) pairs from a `Cargo.lock`.
pub fn lock_packages(lock: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut name: Option<String> = None;
    for line in lock.lines() {
        let line = line.trim();
        if line == "[[package]]" {
            name = None;
        } else if let Some(v) = line.strip_prefix("name = ") {
            name = Some(v.trim_matches('"').to_string());
        } else if let Some(v) = line.strip_prefix("version = ") {
            if let Some(n) = name.take() {
                out.push((n, v.trim_matches('"').to_string()));
            }
        }
    }
    out
}

/// Names appearing with more than one version.
pub fn duplicate_versions(packages: &[(String, String)]) -> Vec<(String, Vec<String>)> {
    let mut by_name: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (n, v) in packages {
        let vs = by_name.entry(n).or_default();
        if !vs.contains(&v.as_str()) {
            vs.push(v);
        }
    }
    by_name
        .into_iter()
        .filter(|(_, vs)| vs.len() > 1)
        .map(|(n, vs)| (n.to_string(), vs.into_iter().map(String::from).collect()))
        .collect()
}

/// The `license = "..."` value of one crate manifest, if present.
pub fn manifest_license(manifest: &str) -> Option<String> {
    for line in manifest.lines() {
        let line = line.trim();
        if let Some(v) = line.strip_prefix("license = ") {
            return Some(v.trim_matches('"').to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parses() {
        let p = DenyPolicy::parse(
            "[licenses]\nallow = [\"MIT\", \"MIT OR Apache-2.0\"]\n[bans]\nmultiple-versions = \"deny\"\n",
        )
        .unwrap();
        assert_eq!(p.licenses_allow.len(), 2);
        assert!(p.deny_multiple_versions);
    }

    #[test]
    fn empty_allow_list_is_an_error() {
        assert!(DenyPolicy::parse("[licenses]\nallow = []\n").is_err());
    }

    #[test]
    fn duplicates_are_detected() {
        let lock = "[[package]]\nname = \"a\"\nversion = \"1.0.0\"\n\n[[package]]\nname = \"a\"\nversion = \"2.0.0\"\n\n[[package]]\nname = \"b\"\nversion = \"0.1.0\"\n";
        let pkgs = lock_packages(lock);
        assert_eq!(pkgs.len(), 3);
        let dups = duplicate_versions(&pkgs);
        assert_eq!(dups.len(), 1);
        assert_eq!(dups[0].0, "a");
    }

    #[test]
    fn license_field_is_extracted() {
        assert_eq!(
            manifest_license("[package]\nname = \"x\"\nlicense = \"MIT OR Apache-2.0\"\n"),
            Some("MIT OR Apache-2.0".into())
        );
        assert_eq!(manifest_license("[package]\nname = \"x\"\n"), None);
    }
}
