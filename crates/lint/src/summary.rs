//! Interprocedural per-function summaries over the [`FileModel`] call
//! graph: which ranked locks a function may acquire (directly or
//! transitively), whether it may block on backend I/O, dispatch onto a
//! shard run queue, or panic — the inputs of the lock-graph pass
//! ([`crate::lockgraph`]).
//!
//! The call graph is name-based like the panic-hygiene rule's, with two
//! refinements that keep std-alike method names (`get`, `remove`, `insert`,
//! …) from wiring every `HashMap` access to the workspace functions of the
//! same name:
//!
//! * **receiver modules** — a call whose receiver token names a known
//!   component (`dmsh.get(..)`) binds only to functions defined in that
//!   component's file;
//! * **self binding** — `self.foo(..)` prefers functions defined in the
//!   same file before falling back to the global name table.
//!
//! Everything else goes through a stoplist of ubiquitous names; severed
//! edges are the accepted cost of a non-parser, and the dynamic
//! cross-check (`mm-lint crosscheck` against `mm_scope
//! --emit-lock-edges`) is the net that catches a severed edge that
//! mattered.

use std::collections::{BTreeMap, HashMap};

use crate::model::{FileModel, FnItem};

/// `(file index, fn index)` — identity of one function in the workspace.
pub type FnRef = (usize, usize);

/// How long a direct lock acquisition is held.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcqScope {
    /// Guard bound to a local: held to the end of the enclosing block.
    Block,
    /// Chained temporary guard: released at the end of the statement.
    Transient,
    /// Held until byte offset `end` — a scoped-helper call
    /// (`with_apply_lock(node, id, || ..)`) whose closure body is
    /// textually in the caller.
    Span(usize),
}

/// One direct lock acquisition inside a function body.
#[derive(Debug, Clone, Copy)]
pub struct DirectAcq {
    pub rank: u8,
    pub name: &'static str,
    pub scope: AcqScope,
    pub pos: usize,
    /// From a `lockorder::acquired(LockRank::X)` annotation rather than a
    /// lock expression: a re-statement of an acquisition the simulation
    /// usually already saw (skipped when the same rank is already held at
    /// the same depth).
    pub annotation: bool,
}

/// One resolved call site inside a function body.
#[derive(Debug, Clone)]
pub struct ResolvedCall {
    pub name: String,
    pub pos: usize,
    /// Workspace functions this name may bind to (empty for std/stoplist).
    pub targets: Vec<FnRef>,
    /// The callee name itself is a backend-I/O primitive.
    pub io_intrinsic: bool,
    /// The callee name itself is a shard run-queue dispatch.
    pub dispatch_intrinsic: bool,
}

/// Transitive facts about one function.
#[derive(Debug, Clone, Default)]
pub struct FnSummary {
    /// rank -> (rank name, via-chain of call names; empty for direct).
    pub acquires: BTreeMap<u8, (String, String)>,
    /// May block on backend I/O (gate/read/write/journal); via-chain.
    pub io: Option<String>,
    /// May dispatch onto a shard run queue; via-chain.
    pub dispatch: Option<String>,
    /// May panic (unwrap/expect/panic! in some reachable body); via-chain.
    pub panics: Option<String>,
}

/// The full workspace summary table.
pub struct Summaries {
    /// Direct lock events per function, sorted by position.
    pub direct: HashMap<FnRef, Vec<DirectAcq>>,
    /// Resolved calls per function, sorted by position.
    pub calls: HashMap<FnRef, Vec<ResolvedCall>>,
    /// Fixpoint summaries per function.
    pub fns: HashMap<FnRef, FnSummary>,
    /// Functions participating in the graph, in deterministic order.
    pub order: Vec<FnRef>,
}

/// The declared lock ranks (mirrors `megammap_telemetry::LockRank`; the
/// lint crate is dependency-free on purpose).
pub const RANKS: &[(u8, &str)] = &[
    (10, "VecState"),
    (20, "Policy"),
    (30, "RtMeta"),
    (40, "ApplyShard"),
    (45, "ApplyVictim"),
    (48, "DirShard"),
    (50, "DmshMeta"),
    (60, "DmshStore"),
    (70, "Mailbox"),
    (80, "Resource"),
];

/// Ranks whose guards must never be held across backend I/O or a shard
/// dispatch: the apply shards and the DMSH maps (the exact shape of the
/// PR 7 lost-dirty-flag race).
pub const IO_SENSITIVE_RANKS: &[u8] = &[40, 45, 50, 60];

/// Guard-returning helper methods that acquire a ranked lock internally.
/// `(pattern, path filter, rank, name)`; patterns ending in `(` take
/// arguments (the transient check then looks past the matching paren).
const GUARD_HELPERS: &[(&str, &str, u8, &str)] = &[
    (".lock_state()", "", 10, "VecState"),
    (".lock_meta()", "", 50, "DmshMeta"),
    (".lock_meta_at(", "", 50, "DmshMeta"),
    (".lock_store(", "crates/tiered/src/dmsh.rs", 60, "DmshStore"),
    (".probe(", "crates/core/src/runtime/directory.rs", 48, "DirShard"),
];

/// Scoped-helper calls that run their closure argument under a ranked
/// lock: the acquisition spans the call's parenthesized extent, so the
/// closure body (textually in the caller) is analyzed with the lock held
/// — matching how the runtime's `LockOrderToken` nests dynamically.
const SPAN_HELPERS: &[(&str, u8, &str)] =
    &[(".with_apply_lock(", 40, "ApplyShard"), (".try_with_apply_lock(", 45, "ApplyVictim")];

/// Callee names that *are* backend I/O, wherever they resolve: the fault
/// plan gate, the format-layer positional I/O, and the WAL append.
const IO_INTRINSICS: &[&str] = &["backend_gate", "read_at", "write_at", "journal_write"];

/// Callee names that enqueue onto a shard run queue.
const DISPATCH_INTRINSICS: &[&str] = &["dispatch", "dispatch_batch"];

/// A call whose receiver token is a key here binds only to functions
/// defined in the named file — the precise escape hatch for component
/// methods whose names collide with std containers (`dmsh.get(..)`).
const RECV_MODULES: &[(&str, &str)] = &[("dmsh", "crates/tiered/src/dmsh.rs")];

/// Ubiquitous names excluded from global (name-only) binding. Superset of
/// the panic-hygiene stoplist: summaries additionally cut container verbs
/// whose workspace homonyms (`Dmsh::get`/`put`/`remove`/`contains`,
/// `MmVec::open`, …) would otherwise attribute lock acquisitions to every
/// `HashMap` access. Those components are reached via the receiver rules
/// above instead.
const SUMMARY_STOPLIST: &[&str] = &[
    "new",
    "len",
    "is_empty",
    "clone",
    "default",
    "fmt",
    "from",
    "into",
    "eq",
    "cmp",
    "hash",
    "drop",
    "next",
    "iter",
    "min",
    "max",
    "name",
    "now",
    "split",
    "lock",
    "load",
    "store",
    "append", // std collisions shared with the panic-hygiene stoplist
    "get",
    "put",
    "remove",
    "insert",
    "contains",
    "push",
    "pop",
    "open",
    "send",
    "recv",
    "take",
    "extend",
    "retain",
    "entry",
    "truncate",
    "flush",
    "record",
    "mark",
    "set",
    "clear",
    "reset",
    "get_mut",
    "with",
    "wait",
    "abs",
    "end",
    // std-iterator adapters and ubiquitous getters that workspace types
    // also define (`Rdd::filter/collect/reduce` ride the TCP collectives;
    // `Device::used`, `TxGuard::begin`, `CommModel::charge`): a chained
    // `.filter(..)` on a plain Vec must not inherit their summaries.
    "filter",
    "map",
    "collect",
    "reduce",
    "sum",
    "fold",
    "count",
    "any",
    "all",
    "find",
    "position",
    "chain",
    "rev",
    "zip",
    "enumerate",
    "skip",
    "last",
    "first",
    "sort",
    "dedup",
    "join",
    "used",
    "charge",
    "begin",
    "advance",
    "spec",
    "kind",
    "size",
    "drain",
];

/// Extract `(receiver, name, pos)` for every call token in `span`:
/// `recv.name(..)` (receiver = the identifier right before the dot, empty
/// for `foo().name(..)` / `arr[i].name(..)`) and free `name(..)` calls
/// (receiver empty; `::`-qualified path segments are skipped like
/// [`crate::model::calls_in`]).
pub fn calls_with_recv(
    scrubbed: &str,
    span: std::ops::Range<usize>,
) -> Vec<(String, String, usize)> {
    let b = scrubbed.as_bytes();
    let mut out = Vec::new();
    let mut i = span.start;
    while i < span.end.min(b.len()) {
        if b[i].is_ascii_alphabetic() || b[i] == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            if i + 1 < b.len() && b[i] == b':' && b[i + 1] == b':' {
                continue; // path segment, not a call of this ident
            }
            let mut j = i;
            while j < b.len() && b[j] == b' ' {
                j += 1;
            }
            if j < b.len() && b[j] == b'(' {
                let mut recv = String::new();
                if start > 0 && b[start - 1] == b'.' {
                    let mut k = start - 1;
                    while k > 0 && (b[k - 1].is_ascii_alphanumeric() || b[k - 1] == b'_') {
                        k -= 1;
                    }
                    recv = scrubbed[k..start - 1].to_string();
                }
                out.push((recv, scrubbed[start..i].to_string(), start));
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Byte offset just past the `)` matching the `(` at `open`.
pub fn match_paren(b: &[u8], open: usize) -> usize {
    let mut depth = 0isize;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    b.len()
}

/// Whether the guard expression whose call ends at `after` is a chained
/// temporary (released at the end of the statement). The chain's `.` may
/// sit on the next line (`self.lock_store(from, now)\n    .remove(&id)`),
/// so skip whitespace first — scrubbing is length-preserving, comments
/// between the call and the `.` are already spaces.
fn is_transient(scrubbed: &str, after: usize) -> bool {
    let b = scrubbed.as_bytes();
    let mut i = after;
    while i < b.len() && b[i].is_ascii_whitespace() {
        i += 1;
    }
    b.get(i) == Some(&b'.')
}

/// Whether the guard at `pos` is dereferenced straight into a copy or a
/// store (`let p = *meta.policy.lock();`, `*meta.policy.lock() = p;`): the
/// guard is a temporary dropped at the end of the statement, not a named
/// binding held to the block's end.
fn is_deref_temporary(scrubbed: &str, pos: usize) -> bool {
    let stmt_start = scrubbed[..pos].rfind([';', '{', '}']).map_or(0, |i| i + 1);
    let stmt = scrubbed[stmt_start..pos].trim_start();
    if stmt.starts_with('*') {
        return true;
    }
    stmt.find('=').is_some_and(|eq| stmt[eq + 1..].trim_start().starts_with('*'))
}

fn rank_name(rank: u8) -> &'static str {
    RANKS.iter().find(|(r, _)| *r == rank).map_or("?", |(_, n)| n)
}

/// Direct lock events of one function, sorted by position.
fn direct_acqs(m: &FileModel, f: &FnItem) -> Vec<DirectAcq> {
    let mut out = Vec::new();
    let in_body = |pos: usize| f.body.contains(&pos) && !m.in_test(pos);
    // Plain `.lock()` with a ranked keyword in the receiver statement.
    for pos in m.occurrences(".lock()").collect::<Vec<_>>() {
        if !in_body(pos) {
            continue;
        }
        if let Some((rank, name)) = crate::rules::rank_of_lock(m, pos) {
            let scope = if is_transient(&m.scrubbed, pos + ".lock()".len())
                || is_deref_temporary(&m.scrubbed, pos)
            {
                AcqScope::Transient
            } else {
                AcqScope::Block
            };
            out.push(DirectAcq { rank, name, scope, pos, annotation: false });
        }
    }
    // Guard-returning helpers.
    for (pat, path, rank, name) in GUARD_HELPERS {
        if !path.is_empty() && !m.path.contains(path) {
            continue;
        }
        for pos in m.occurrences(pat).collect::<Vec<_>>() {
            if !in_body(pos) {
                continue;
            }
            let after = if pat.ends_with("()") {
                pos + pat.len()
            } else {
                match_paren(m.scrubbed.as_bytes(), pos + pat.len() - 1)
            };
            let scope = if is_transient(&m.scrubbed, after) {
                AcqScope::Transient
            } else {
                AcqScope::Block
            };
            out.push(DirectAcq { rank: *rank, name, scope, pos, annotation: false });
        }
    }
    // Scoped-helper calls: the lock spans the call's parenthesized extent.
    for (pat, rank, name) in SPAN_HELPERS {
        for pos in m.occurrences(pat).collect::<Vec<_>>() {
            if !in_body(pos) {
                continue;
            }
            let end = match_paren(m.scrubbed.as_bytes(), pos + pat.len() - 1);
            out.push(DirectAcq {
                rank: *rank,
                name,
                scope: AcqScope::Span(end),
                pos,
                annotation: false,
            });
        }
    }
    // `lockorder::acquired(LockRank::X)` annotations.
    for pos in m.occurrences("acquired(LockRank::").collect::<Vec<_>>() {
        if !in_body(pos) {
            continue;
        }
        let start = pos + "acquired(LockRank::".len();
        let rest = &m.scrubbed[start..];
        let end = rest.find(')').unwrap_or(0);
        let rank_ident = rest[..end].trim();
        if let Some(&(rank, name)) = RANKS.iter().find(|(_, n)| *n == rank_ident) {
            out.push(DirectAcq { rank, name, scope: AcqScope::Block, pos, annotation: true });
        }
    }
    out.sort_by_key(|a| a.pos);
    out
}

/// Resolve one call to its workspace targets.
fn resolve(
    recv: &str,
    name: &str,
    fi: usize,
    files: &[FileModel],
    by_name: &HashMap<&str, Vec<FnRef>>,
    by_file_name: &HashMap<(usize, &str), Vec<FnRef>>,
) -> Vec<FnRef> {
    if let Some((_, path)) = RECV_MODULES.iter().find(|(r, _)| *r == recv) {
        return by_name
            .get(name)
            .into_iter()
            .flatten()
            .copied()
            .filter(|&(tfi, _)| files[tfi].path.ends_with(path))
            .collect();
    }
    if recv == "self" {
        if let Some(v) = by_file_name.get(&(fi, name)) {
            return v.clone();
        }
    }
    if SUMMARY_STOPLIST.contains(&name) {
        return Vec::new();
    }
    by_name.get(name).into_iter().flatten().copied().collect()
}

/// Compute direct facts and run the transitive fixpoint.
pub fn compute(files: &[FileModel]) -> Summaries {
    // Name tables over non-test functions with bodies.
    let mut by_name: HashMap<&str, Vec<FnRef>> = HashMap::new();
    let mut by_file_name: HashMap<(usize, &str), Vec<FnRef>> = HashMap::new();
    let mut order: Vec<FnRef> = Vec::new();
    for (fi, m) in files.iter().enumerate() {
        for (gi, f) in m.fns.iter().enumerate() {
            if f.body.is_empty() || m.in_test(f.body.start) {
                continue;
            }
            by_name.entry(f.name.as_str()).or_default().push((fi, gi));
            by_file_name.entry((fi, f.name.as_str())).or_default().push((fi, gi));
            order.push((fi, gi));
        }
    }

    let mut direct: HashMap<FnRef, Vec<DirectAcq>> = HashMap::new();
    let mut calls: HashMap<FnRef, Vec<ResolvedCall>> = HashMap::new();
    let mut fns: HashMap<FnRef, FnSummary> = HashMap::new();
    for &(fi, gi) in &order {
        let m = &files[fi];
        let f = &m.fns[gi];
        let da = direct_acqs(m, f);
        let mut summary = FnSummary::default();
        for a in &da {
            summary.acquires.entry(a.rank).or_insert_with(|| (a.name.to_string(), String::new()));
        }
        let mut rc = Vec::new();
        for (recv, name, pos) in calls_with_recv(&m.scrubbed, f.body.clone()) {
            if m.in_test(pos) {
                continue;
            }
            // Only the innermost fn owns the call (nested fns are their
            // own nodes).
            if m.enclosing_fn(pos).map(|g| g.body.start) != Some(f.body.start) {
                continue;
            }
            let io_intrinsic = IO_INTRINSICS.contains(&name.as_str());
            let dispatch_intrinsic = DISPATCH_INTRINSICS.contains(&name.as_str());
            let mut targets = resolve(&recv, &name, fi, files, &by_name, &by_file_name);
            targets.retain(|&t| t != (fi, gi)); // ignore self-recursion
            if targets.is_empty() && !io_intrinsic && !dispatch_intrinsic {
                continue;
            }
            if io_intrinsic {
                summary.io.get_or_insert_with(|| name.clone());
            }
            if dispatch_intrinsic {
                summary.dispatch.get_or_insert_with(|| name.clone());
            }
            rc.push(ResolvedCall { name, pos, targets, io_intrinsic, dispatch_intrinsic });
        }
        // Direct panic tokens.
        for tok in crate::rules::PANIC_TOKENS {
            let mut from = f.body.start;
            while let Some(rel) = m.scrubbed[from..f.body.end].find(tok) {
                let pos = from + rel;
                from = pos + tok.len();
                if !m.in_test(pos) {
                    summary.panics.get_or_insert_with(|| {
                        tok.trim_matches(|c| matches!(c, '.' | '(' | ')' | '!')).to_string()
                    });
                }
            }
        }
        direct.insert((fi, gi), da);
        calls.insert((fi, gi), rc);
        fns.insert((fi, gi), summary);
    }

    // Fixpoint: propagate callee facts into callers until stable. The
    // iteration order is deterministic (files sorted by path, fns by
    // position), so the first-discovered via-chains are stable too.
    loop {
        let mut changed = false;
        for &node in &order {
            let callsites = &calls[&node];
            let mut add_acq: Vec<(u8, String, String)> = Vec::new();
            let mut add_io: Option<String> = None;
            let mut add_dispatch: Option<String> = None;
            let mut add_panics: Option<String> = None;
            {
                let me = &fns[&node];
                for c in callsites {
                    for &t in &c.targets {
                        let callee = &fns[&t];
                        for (&rank, (rname, via)) in &callee.acquires {
                            if !me.acquires.contains_key(&rank)
                                && !add_acq.iter().any(|(r, _, _)| *r == rank)
                            {
                                let chain = if via.is_empty() {
                                    c.name.clone()
                                } else {
                                    format!("{} -> {}", c.name, via)
                                };
                                add_acq.push((rank, rname.clone(), chain));
                            }
                        }
                        if me.io.is_none() && add_io.is_none() {
                            if let Some(v) = &callee.io {
                                add_io = Some(format!("{} -> {}", c.name, v));
                            }
                        }
                        if me.dispatch.is_none() && add_dispatch.is_none() {
                            if let Some(v) = &callee.dispatch {
                                add_dispatch = Some(format!("{} -> {}", c.name, v));
                            }
                        }
                        if me.panics.is_none() && add_panics.is_none() {
                            if let Some(v) = &callee.panics {
                                add_panics = Some(format!("{} -> {}", c.name, v));
                            }
                        }
                    }
                }
            }
            if !add_acq.is_empty()
                || add_io.is_some()
                || add_dispatch.is_some()
                || add_panics.is_some()
            {
                let me = fns.get_mut(&node).expect("summary exists");
                for (rank, rname, via) in add_acq {
                    me.acquires.entry(rank).or_insert((rname, via));
                    changed = true;
                }
                if me.io.is_none() && add_io.is_some() {
                    me.io = add_io;
                    changed = true;
                }
                if me.dispatch.is_none() && add_dispatch.is_some() {
                    me.dispatch = add_dispatch;
                    changed = true;
                }
                if me.panics.is_none() && add_panics.is_some() {
                    me.panics = add_panics;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    Summaries { direct, calls, fns, order }
}

impl Summaries {
    /// The summary of a function (empty default for unknown refs).
    pub fn of(&self, node: FnRef) -> &FnSummary {
        static EMPTY: std::sync::OnceLock<FnSummary> = std::sync::OnceLock::new();
        self.fns.get(&node).unwrap_or_else(|| EMPTY.get_or_init(FnSummary::default))
    }
}

/// Human name of a rank (public for the graph/report modules).
pub fn name_of_rank(rank: u8) -> &'static str {
    rank_name(rank)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> FileModel {
        FileModel::parse(path, src)
    }

    #[test]
    fn direct_block_and_transient_scopes() {
        let m = file(
            "crates/tiered/src/dmsh.rs",
            "fn a(&self) { let g = self.meta.lock(); }\n\
             fn b(&self) { self.meta.lock().get(&id); }",
        );
        let s = compute(std::slice::from_ref(&m));
        let a = s.direct[&(0, 0)].clone();
        assert_eq!((a[0].rank, a[0].scope), (50, AcqScope::Block));
        let b = s.direct[&(0, 1)].clone();
        assert_eq!((b[0].rank, b[0].scope), (50, AcqScope::Transient));
    }

    #[test]
    fn span_helper_extends_to_closing_paren() {
        let src =
            "fn f(&self, rt: &Rt) { rt.with_apply_lock(0, id, || {\n    inner();\n}); after(); }";
        let m = file("crates/core/src/runtime/stager.rs", src);
        let s = compute(std::slice::from_ref(&m));
        let d = s.direct[&(0, 0)].clone();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rank, 40);
        let AcqScope::Span(end) = d[0].scope else { panic!("expected span") };
        // The span covers `inner()` but not `after()`.
        assert!(end > src.find("inner").unwrap());
        assert!(end < src.find("after").unwrap());
    }

    #[test]
    fn transitive_acquire_via_call_chain() {
        let m = file(
            "crates/core/src/runtime/mod.rs",
            "fn low(&self) { let g = self.vectors.lock(); }\n\
             fn mid(&self) { self.low(); }\n\
             fn top(&self) { self.mid(); }",
        );
        let s = compute(std::slice::from_ref(&m));
        let top = s.of((0, 2));
        let (name, via) = top.acquires.get(&30).expect("RtMeta propagated");
        assert_eq!(name, "RtMeta");
        assert_eq!(via, "mid -> low");
    }

    #[test]
    fn io_and_dispatch_intrinsics_propagate() {
        let m = file(
            "crates/core/src/runtime/stager.rs",
            "fn leaf(&self) { backend_gate(rt, t, meta, n, ctx); }\n\
             fn caller(&self) { self.leaf(); self.dispatch(0, id, 1, t, r, ctx); }",
        );
        let s = compute(std::slice::from_ref(&m));
        assert_eq!(s.of((0, 0)).io.as_deref(), Some("backend_gate"));
        assert_eq!(s.of((0, 1)).io.as_deref(), Some("leaf -> backend_gate"));
        assert_eq!(s.of((0, 1)).dispatch.as_deref(), Some("dispatch"));
    }

    #[test]
    fn stoplisted_names_do_not_bind_globally() {
        let a =
            file("crates/tiered/src/dmsh.rs", "pub fn get(&self) { let g = self.meta.lock(); }");
        let b = file("crates/core/src/pcache.rs", "fn probe_cache(&self, m: &Map) { m.get(&k); }");
        let s = compute(&[a, b]);
        // pcache's `m.get(..)` must NOT inherit Dmsh::get's DmshMeta.
        assert!(s.of((1, 0)).acquires.is_empty(), "{:?}", s.of((1, 0)));
    }

    #[test]
    fn dmsh_receiver_binds_through_the_stoplist() {
        let a =
            file("crates/tiered/src/dmsh.rs", "pub fn get(&self) { let g = self.meta.lock(); }");
        let b = file(
            "crates/core/src/runtime/stager.rs",
            "fn drain(&self, dmsh: &Dmsh) { dmsh.get(now, id); }",
        );
        let s = compute(&[a, b]);
        assert!(s.of((1, 0)).acquires.contains_key(&50), "{:?}", s.of((1, 0)));
    }

    #[test]
    fn self_binding_prefers_same_file() {
        let a = file(
            "crates/core/src/runtime/mod.rs",
            "fn dispatch(&self) { let g = self.vectors.lock(); }\n\
             fn caller(&self) { self.dispatch(); }",
        );
        let s = compute(std::slice::from_ref(&a));
        assert!(s.of((0, 1)).acquires.contains_key(&30));
    }

    #[test]
    fn annotations_are_recognized() {
        let m = file(
            "crates/core/src/runtime/mod.rs",
            "fn f(&self) { let _lo = lockorder::acquired(LockRank::ApplyVictim); }",
        );
        let s = compute(std::slice::from_ref(&m));
        let d = s.direct[&(0, 0)].clone();
        assert_eq!(d.len(), 1);
        assert!(d[0].annotation);
        assert_eq!((d[0].rank, d[0].name), (45, "ApplyVictim"));
    }

    #[test]
    fn panic_fact_propagates() {
        let m = file(
            "crates/core/src/runtime/mod.rs",
            "fn leaf(&self) { self.x.unwrap(); }\nfn root(&self) { self.leaf(); }",
        );
        let s = compute(std::slice::from_ref(&m));
        assert_eq!(s.of((0, 1)).panics.as_deref(), Some("leaf -> unwrap"));
    }
}
