//! mm-lint: the MegaMmap workspace invariant checker.
//!
//! ```text
//! mm-lint [--root DIR]          # run all five rules (deny-by-default)
//! mm-lint [--root DIR] deny     # license + duplicate-version checks
//! ```
//!
//! Exit code 0 means clean; 1 means findings (or dead allowlist entries);
//! 2 means the checker itself could not run. Every exception to a rule
//! lives in `lint-allow.toml` next to the workspace root, with a reason.

mod allow;
mod deny;
mod model;
mod rules;
mod scrub;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use allow::Allowlist;
use model::FileModel;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut subcmd = "check".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("mm-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "check" | "deny" => subcmd = a,
            other => {
                eprintln!("mm-lint: unknown argument `{other}` (usage: mm-lint [--root DIR] [check|deny])");
                return ExitCode::from(2);
            }
        }
    }
    match subcmd.as_str() {
        "deny" => run_deny(&root),
        _ => run_check(&root),
    }
}

/// Workspace-relative `/`-separated path.
fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root).unwrap_or(p).to_string_lossy().replace('\\', "/")
}

/// All `.rs` files under `crates/` (the shims are vendored stand-ins for
/// external crates and are not subject to workspace invariants).
fn collect_sources(root: &Path) -> Result<Vec<FileModel>, String> {
    let mut files = Vec::new();
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read {}: {e}", dir.display()))?;
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let src = std::fs::read_to_string(&path)
                    .map_err(|e| format!("read {}: {e}", path.display()))?;
                files.push(FileModel::parse(&rel(root, &path), &src));
            }
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

fn run_check(root: &Path) -> ExitCode {
    let allowlist = match std::fs::read_to_string(root.join("lint-allow.toml")) {
        Ok(text) => match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("mm-lint: {e}");
                return ExitCode::from(2);
            }
        },
        Err(_) => Allowlist::empty(),
    };
    let files = match collect_sources(root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("mm-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let all = rules::run_all(&files);
    let mut denied = 0usize;
    let mut allowed = 0usize;
    for f in &all {
        if allowlist.permits(f.rule, &f.path, &f.line_text) {
            allowed += 1;
            continue;
        }
        denied += 1;
        eprintln!("mm-lint: [{}] {}:{}: {}", f.rule, f.path, f.line, f.msg);
        eprintln!("    > {}", f.line_text);
    }
    let unused = allowlist.unused();
    for e in &unused {
        denied += 1;
        eprintln!(
            "mm-lint: [allowlist] lint-allow.toml:{}: entry ({} @ {}) matched nothing — remove it",
            e.line, e.rule, e.path
        );
    }
    eprintln!(
        "mm-lint: {} file(s), {} finding(s) denied, {} allowlisted",
        files.len(),
        denied,
        allowed
    );
    if denied == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_deny(root: &Path) -> ExitCode {
    let policy = match std::fs::read_to_string(root.join("deny.toml"))
        .map_err(|e| format!("deny.toml: {e}"))
        .and_then(|t| deny::DenyPolicy::parse(&t))
    {
        Ok(p) => p,
        Err(e) => {
            eprintln!("mm-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let mut denied = 0usize;
    // Duplicate versions from the lockfile.
    match std::fs::read_to_string(root.join("Cargo.lock")) {
        Ok(lock) => {
            if policy.deny_multiple_versions {
                for (name, versions) in deny::duplicate_versions(&deny::lock_packages(&lock)) {
                    denied += 1;
                    eprintln!(
                        "mm-lint: [deny] duplicate versions of `{name}`: {}",
                        versions.join(", ")
                    );
                }
            }
        }
        Err(e) => {
            eprintln!("mm-lint: Cargo.lock: {e}");
            return ExitCode::from(2);
        }
    }
    // License allowlist over every workspace member manifest (the root
    // manifest doubles as the meta-crate package).
    let mut manifests = Vec::new();
    let root_manifest = root.join("Cargo.toml");
    if std::fs::read_to_string(&root_manifest).is_ok_and(|t| t.contains("[package]")) {
        manifests.push(root_manifest);
    }
    for group in ["crates", "shims"] {
        let dir = root.join(group);
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let m = entry.path().join("Cargo.toml");
            if m.is_file() {
                manifests.push(m);
            }
        }
    }
    manifests.sort();
    for m in &manifests {
        let text = match std::fs::read_to_string(m) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("mm-lint: {}: {e}", m.display());
                return ExitCode::from(2);
            }
        };
        match deny::manifest_license(&text) {
            Some(lic) if policy.licenses_allow.contains(&lic) => {}
            Some(lic) => {
                denied += 1;
                eprintln!(
                    "mm-lint: [deny] {}: license `{lic}` not in deny.toml allow list",
                    rel(root, m)
                );
            }
            None => {
                denied += 1;
                eprintln!("mm-lint: [deny] {}: missing `license` field", rel(root, m));
            }
        }
    }
    eprintln!("mm-lint: deny checked {} manifest(s), {} finding(s)", manifests.len(), denied);
    if denied == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
