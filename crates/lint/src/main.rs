//! mm-lint: the MegaMmap workspace invariant checker.
//!
//! ```text
//! mm-lint [--root DIR] [--json]     # all rules + lock-graph (deny-by-default)
//! mm-lint [--root DIR] deny         # license + duplicate-version checks
//! mm-lint [--root DIR] graph        # write results/lock_graph.{json,dot}
//! mm-lint [--root DIR] crosscheck F # observed edges F ⊆ static graph
//! mm-lint [--root DIR] --check-allow # fail on stale lint-allow.toml entries
//! ```
//!
//! Exit code 0 means clean; 1 means findings (or dead allowlist entries);
//! 2 means the checker itself could not run. Every exception to a rule
//! lives in `lint-allow.toml` next to the workspace root, with a reason.

mod allow;
mod crosscheck;
mod deny;
mod lockgraph;
mod model;
mod rules;
mod scrub;
mod summary;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use allow::Allowlist;
use model::FileModel;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut subcmd = "check".to_string();
    let mut json = false;
    let mut check_allow = false;
    let mut edges_file: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("mm-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--check-allow" => check_allow = true,
            "check" | "deny" | "graph" => subcmd = a,
            "crosscheck" => {
                subcmd = a;
                match args.next() {
                    Some(f) => edges_file = Some(PathBuf::from(f)),
                    None => {
                        eprintln!("mm-lint: crosscheck needs an mm-lock-edges/v1 file");
                        return ExitCode::from(2);
                    }
                }
            }
            other => {
                eprintln!(
                    "mm-lint: unknown argument `{other}` (usage: mm-lint [--root DIR] [--json] [--check-allow] [check|deny|graph|crosscheck FILE])"
                );
                return ExitCode::from(2);
            }
        }
    }
    match subcmd.as_str() {
        "deny" => run_deny(&root),
        "graph" => run_graph(&root),
        "crosscheck" => run_crosscheck(&root, &edges_file.expect("parsed above")),
        _ if check_allow => run_check_allow(&root),
        _ => run_check(&root, json),
    }
}

/// Workspace-relative `/`-separated path.
fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root).unwrap_or(p).to_string_lossy().replace('\\', "/")
}

/// All `.rs` files under `crates/` (the shims are vendored stand-ins for
/// external crates and are not subject to workspace invariants).
fn collect_sources(root: &Path) -> Result<Vec<FileModel>, String> {
    let mut files = Vec::new();
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read {}: {e}", dir.display()))?;
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let src = std::fs::read_to_string(&path)
                    .map_err(|e| format!("read {}: {e}", path.display()))?;
                files.push(FileModel::parse(&rel(root, &path), &src));
            }
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

/// Load the allowlist and parsed sources, or explain why not.
fn load(root: &Path) -> Result<(Allowlist, Vec<FileModel>), String> {
    let allowlist = match std::fs::read_to_string(root.join("lint-allow.toml")) {
        Ok(text) => Allowlist::parse(&text)?,
        Err(_) => Allowlist::empty(),
    };
    Ok((allowlist, collect_sources(root)?))
}

/// Every finding across the per-file rules and the interprocedural
/// lock-graph pass. The two families share one deny-by-default gate and
/// one allowlist, so a `lock-graph`/`hold-across-io` waiver that stops
/// matching fails `check` like any other stale entry.
fn all_findings(files: &[FileModel]) -> Vec<rules::Finding> {
    let mut all = rules::run_all(files);
    let (_, lg) = lockgraph::analyze(files);
    all.extend(lg);
    all.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    all
}

/// `mm-lint-findings/v1`: the denied findings as a machine-readable
/// document (what CI annotators and editor integrations consume).
fn findings_json(denied: &[&rules::Finding]) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
    }
    let mut s = String::from("{\n  \"schema\": \"mm-lint-findings/v1\",\n  \"findings\": [");
    if denied.is_empty() {
        s.push_str("]\n}\n");
        return s;
    }
    s.push('\n');
    for (i, f) in denied.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"msg\": \"{}\" }}{}\n",
            esc(f.rule),
            esc(&f.path),
            f.line,
            esc(&f.msg),
            if i + 1 < denied.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn run_check(root: &Path, json: bool) -> ExitCode {
    let (allowlist, files) = match load(root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("mm-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let all = all_findings(&files);
    let mut denied: Vec<&rules::Finding> = Vec::new();
    let mut allowed = 0usize;
    for f in &all {
        if allowlist.permits(f.rule, &f.path, &f.line_text) {
            allowed += 1;
            continue;
        }
        denied.push(f);
        eprintln!("mm-lint: [{}] {}:{}: {}", f.rule, f.path, f.line, f.msg);
        eprintln!("    > {}", f.line_text);
    }
    let unused = allowlist.unused();
    for e in &unused {
        eprintln!(
            "mm-lint: [allowlist] lint-allow.toml:{}: entry ({} @ {}) matched nothing — remove it",
            e.line, e.rule, e.path
        );
    }
    if json {
        print!("{}", findings_json(&denied));
    }
    eprintln!(
        "mm-lint: {} file(s), {} finding(s) denied, {} allowlisted",
        files.len(),
        denied.len() + unused.len(),
        allowed
    );
    if denied.is_empty() && unused.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `--check-allow`: the allowlist-hygiene gate alone — replay every rule,
/// mark entries used, and fail on the ones nothing matched.
fn run_check_allow(root: &Path) -> ExitCode {
    let (allowlist, files) = match load(root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("mm-lint: {e}");
            return ExitCode::from(2);
        }
    };
    for f in &all_findings(&files) {
        allowlist.permits(f.rule, &f.path, &f.line_text);
    }
    let unused = allowlist.unused();
    for e in &unused {
        eprintln!(
            "mm-lint: [allowlist] lint-allow.toml:{}: entry ({} @ {}) matched nothing — remove it",
            e.line, e.rule, e.path
        );
    }
    eprintln!("mm-lint: {} allowlist entr(ies), {} stale", allowlist.entries.len(), unused.len());
    if unused.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `graph`: write `results/lock_graph.json` + `.dot` (deterministic) and
/// fail on unwaived lock-graph findings — the artifact must never be
/// regenerated from a workspace the gate would reject.
fn run_graph(root: &Path) -> ExitCode {
    let (allowlist, files) = match load(root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("mm-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let (graph, findings) = lockgraph::analyze(&files);
    let mut denied = 0usize;
    for f in &findings {
        if allowlist.permits(f.rule, &f.path, &f.line_text) {
            continue;
        }
        denied += 1;
        eprintln!("mm-lint: [{}] {}:{}: {}", f.rule, f.path, f.line, f.msg);
    }
    let results = root.join("results");
    if let Err(e) = std::fs::create_dir_all(&results) {
        eprintln!("mm-lint: create {}: {e}", results.display());
        return ExitCode::from(2);
    }
    for (name, text) in [("lock_graph.json", graph.to_json()), ("lock_graph.dot", graph.to_dot())] {
        if let Err(e) = std::fs::write(results.join(name), text) {
            eprintln!("mm-lint: write results/{name}: {e}");
            return ExitCode::from(2);
        }
    }
    eprintln!(
        "mm-lint: lock graph: {} edge(s), {} finding(s) denied -> results/lock_graph.{{json,dot}}",
        graph.edges.len(),
        denied
    );
    if denied == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `crosscheck FILE`: every runtime-observed lock-nesting edge must be in
/// the static graph (static ⊇ dynamic).
fn run_crosscheck(root: &Path, edges_file: &Path) -> ExitCode {
    let files = match collect_sources(root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("mm-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let observed = match std::fs::read_to_string(edges_file)
        .map_err(|e| format!("{}: {e}", edges_file.display()))
        .and_then(|t| crosscheck::parse_edges(&t))
    {
        Ok(v) => v,
        Err(e) => {
            eprintln!("mm-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let (graph, _) = lockgraph::analyze(&files);
    let miss = crosscheck::missing(&graph, &observed);
    if miss.is_empty() {
        eprintln!(
            "mm-lint: crosscheck: {} observed edge(s) all present in the static graph ({} static edge(s))",
            observed.len(),
            graph.edges.len()
        );
        ExitCode::SUCCESS
    } else {
        eprint!("{}", crosscheck::report(&miss));
        eprintln!(
            "mm-lint: crosscheck: {} observed edge(s) missing from the static graph",
            miss.len()
        );
        ExitCode::FAILURE
    }
}

fn run_deny(root: &Path) -> ExitCode {
    let policy = match std::fs::read_to_string(root.join("deny.toml"))
        .map_err(|e| format!("deny.toml: {e}"))
        .and_then(|t| deny::DenyPolicy::parse(&t))
    {
        Ok(p) => p,
        Err(e) => {
            eprintln!("mm-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let mut denied = 0usize;
    // Duplicate versions from the lockfile.
    match std::fs::read_to_string(root.join("Cargo.lock")) {
        Ok(lock) => {
            if policy.deny_multiple_versions {
                for (name, versions) in deny::duplicate_versions(&deny::lock_packages(&lock)) {
                    denied += 1;
                    eprintln!(
                        "mm-lint: [deny] duplicate versions of `{name}`: {}",
                        versions.join(", ")
                    );
                }
            }
        }
        Err(e) => {
            eprintln!("mm-lint: Cargo.lock: {e}");
            return ExitCode::from(2);
        }
    }
    // License allowlist over every workspace member manifest (the root
    // manifest doubles as the meta-crate package).
    let mut manifests = Vec::new();
    let root_manifest = root.join("Cargo.toml");
    if std::fs::read_to_string(&root_manifest).is_ok_and(|t| t.contains("[package]")) {
        manifests.push(root_manifest);
    }
    for group in ["crates", "shims"] {
        let dir = root.join(group);
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let m = entry.path().join("Cargo.toml");
            if m.is_file() {
                manifests.push(m);
            }
        }
    }
    manifests.sort();
    for m in &manifests {
        let text = match std::fs::read_to_string(m) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("mm-lint: {}: {e}", m.display());
                return ExitCode::from(2);
            }
        };
        match deny::manifest_license(&text) {
            Some(lic) if policy.licenses_allow.contains(&lic) => {}
            Some(lic) => {
                denied += 1;
                eprintln!(
                    "mm-lint: [deny] {}: license `{lic}` not in deny.toml allow list",
                    rel(root, m)
                );
            }
            None => {
                denied += 1;
                eprintln!("mm-lint: [deny] {}: missing `license` field", rel(root, m));
            }
        }
    }
    eprintln!("mm-lint: deny checked {} manifest(s), {} finding(s)", manifests.len(), denied);
    if denied == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The `--json` document is a consumer contract: field names, order,
    /// indentation, and the empty-list closed form are all pinned.
    #[test]
    fn findings_json_schema_is_pinned() {
        let f = rules::Finding {
            rule: "lock-graph",
            path: "crates/core/src/runtime/stager.rs".to_string(),
            line: 42,
            msg: "acquiring \"Policy\" while ApplyShard is held".to_string(),
            line_text: "ignored in json output".to_string(),
        };
        let got = findings_json(&[&f]);
        let want = "{\n  \"schema\": \"mm-lint-findings/v1\",\n  \"findings\": [\n    { \"rule\": \"lock-graph\", \"path\": \"crates/core/src/runtime/stager.rs\", \"line\": 42, \"msg\": \"acquiring \\\"Policy\\\" while ApplyShard is held\" }\n  ]\n}\n";
        assert_eq!(got, want);
    }

    #[test]
    fn findings_json_empty_is_closed_form() {
        assert_eq!(
            findings_json(&[]),
            "{\n  \"schema\": \"mm-lint-findings/v1\",\n  \"findings\": []\n}\n"
        );
    }
}
