//! A line-oriented, scrubbed model of one Rust source file.
//!
//! mm-lint is deliberately not a full parser: it works on scrubbed text
//! (see [`crate::scrub`]) with brace-depth tracking, which is enough to
//! attribute findings to functions, skip `#[cfg(test)]` items, and build a
//! name-based call graph. Where the approximation misfires, the checked-in
//! allowlist documents the exception with a reason.

use crate::scrub::{line_of, scrub};

/// One `fn` item: signature plus body span in the scrubbed text.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Parameter list text (scrubbed, parens stripped).
    pub params: String,
    pub is_pub: bool,
    pub line: usize,
    /// Byte span of the body `{ ... }` (empty for trait declarations).
    pub body: std::ops::Range<usize>,
}

/// A parsed source file ready for rule passes.
pub struct FileModel {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Original source (for reporting lines and allowlist matching).
    pub src: String,
    /// Scrubbed source (comments/strings blanked, same length).
    pub scrubbed: String,
    /// Byte spans covered by `#[cfg(test)]` / `#[test]` items.
    pub test_spans: Vec<std::ops::Range<usize>>,
    pub fns: Vec<FnItem>,
}

impl FileModel {
    pub fn parse(path: &str, src: &str) -> Self {
        let scrubbed = scrub(src);
        let test_spans = find_test_spans(&scrubbed);
        let fns = find_fns(&scrubbed, src);
        FileModel { path: path.to_string(), src: src.to_string(), scrubbed, test_spans, fns }
    }

    /// True if byte offset `pos` is inside test-only code. Files under
    /// `tests/` or `benches/` are test code wholesale.
    pub fn in_test(&self, pos: usize) -> bool {
        if self.path.contains("/tests/") || self.path.contains("/benches/") {
            return true;
        }
        self.test_spans.iter().any(|s| s.contains(&pos))
    }

    /// 1-indexed line of a byte offset.
    pub fn line(&self, pos: usize) -> usize {
        line_of(&self.src, pos)
    }

    /// The source line containing byte offset `pos`, trimmed.
    pub fn line_text(&self, pos: usize) -> &str {
        let start = self.src[..pos.min(self.src.len())].rfind('\n').map_or(0, |i| i + 1);
        let end = self.src[pos..].find('\n').map_or(self.src.len(), |i| pos + i);
        self.src[start..end].trim()
    }

    /// The innermost function whose body contains `pos`.
    pub fn enclosing_fn(&self, pos: usize) -> Option<&FnItem> {
        self.fns.iter().filter(|f| f.body.contains(&pos)).min_by_key(|f| f.body.end - f.body.start)
    }

    /// All byte offsets where `needle` occurs in the scrubbed text.
    pub fn occurrences<'a>(&'a self, needle: &'a str) -> impl Iterator<Item = usize> + 'a {
        let mut from = 0usize;
        std::iter::from_fn(move || {
            let rel = self.scrubbed[from..].find(needle)?;
            let pos = from + rel;
            from = pos + needle.len();
            Some(pos)
        })
    }
}

/// Find body spans of items annotated `#[cfg(test)]`, `#[cfg(all(test`,
/// or `#[test]`: from the attribute, the next `{` opens the item.
fn find_test_spans(scrubbed: &str) -> Vec<std::ops::Range<usize>> {
    let mut spans = Vec::new();
    for pat in ["#[cfg(test)]", "#[cfg(all(test", "#[test]"] {
        let mut from = 0usize;
        while let Some(rel) = scrubbed[from..].find(pat) {
            let at = from + rel;
            from = at + pat.len();
            if let Some(open_rel) = scrubbed[at..].find('{') {
                let open = at + open_rel;
                let close = match_brace(scrubbed.as_bytes(), open);
                spans.push(at..close);
            }
        }
    }
    spans
}

/// Byte offset just past the `}` matching the `{` at `open`.
fn match_brace(b: &[u8], open: usize) -> usize {
    let mut depth = 0isize;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    b.len()
}

/// Extract every `fn` item (including nested ones).
fn find_fns(scrubbed: &str, src: &str) -> Vec<FnItem> {
    let b = scrubbed.as_bytes();
    let mut fns = Vec::new();
    let mut i = 0usize;
    while let Some(rel) = scrubbed[i..].find("fn ") {
        let at = i + rel;
        i = at + 3;
        // Word boundary on the left ("fn" not a suffix of an identifier).
        if at > 0 && (b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_') {
            continue;
        }
        let mut j = at + 3;
        while j < b.len() && b[j] == b' ' {
            j += 1;
        }
        let name_start = j;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        if j == name_start {
            continue; // `fn(` type position, e.g. `Box<dyn Fn(...)>`
        }
        let name = scrubbed[name_start..j].to_string();
        // Skip generics between name and the parameter list.
        if j < b.len() && b[j] == b'<' {
            let mut depth = 1;
            j += 1;
            while j < b.len() && depth > 0 {
                match b[j] {
                    b'<' => depth += 1,
                    b'>' => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
        }
        if j >= b.len() || b[j] != b'(' {
            continue;
        }
        let params_start = j + 1;
        let mut depth = 1;
        j += 1;
        while j < b.len() && depth > 0 {
            match b[j] {
                b'(' => depth += 1,
                b')' => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        let params = scrubbed[params_start..j.saturating_sub(1)].trim().to_string();
        // Body starts at the next `{` before any `;` (trait fns have none).
        let mut body = 0..0;
        let mut k = j;
        while k < b.len() {
            match b[k] {
                b'{' => {
                    body = k..match_brace(b, k);
                    break;
                }
                b';' => break,
                _ => k += 1,
            }
        }
        // `pub` immediately before the header (allowing `pub(crate)` etc.).
        let head = scrubbed[..at].trim_end();
        let is_pub = head.ends_with("pub")
            || head.ends_with(')') && {
                let open = head.rfind("pub(");
                open.is_some_and(|o| !head[o..].contains('\n'))
            };
        fns.push(FnItem { name, params, is_pub, line: line_of(src, at), body });
    }
    fns
}

/// Workspace-defined callee names referenced inside `span` of `scrubbed`:
/// every `ident(` and `.ident(` token.
pub fn calls_in(scrubbed: &str, span: std::ops::Range<usize>) -> Vec<(String, usize)> {
    let b = scrubbed.as_bytes();
    let mut out = Vec::new();
    let mut i = span.start;
    while i < span.end.min(b.len()) {
        if b[i].is_ascii_alphabetic() || b[i] == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            let mut j = i;
            // Allow turbofish / generics between name and `(`.
            if j + 1 < b.len() && b[j] == b':' && b[j + 1] == b':' {
                // path segment, not a call of this ident
            } else {
                while j < b.len() && b[j] == b' ' {
                    j += 1;
                }
                if j < b.len() && b[j] == b'(' {
                    out.push((scrubbed[start..i].to_string(), start));
                }
            }
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
pub fn outer(x: u64, ctx: TraceCtx) -> u64 {
    helper(x)
}

fn helper(x: u64) -> u64 {
    x.checked_add(1).unwrap()
}

#[cfg(test)]
mod tests {
    fn only_in_tests() { other.tx_begin(p); }
}
"#;

    #[test]
    fn fns_are_found_with_params_and_pubness() {
        let m = FileModel::parse("crates/x/src/lib.rs", SRC);
        let outer = m.fns.iter().find(|f| f.name == "outer").unwrap();
        assert!(outer.is_pub);
        assert!(outer.params.contains("TraceCtx"));
        let helper = m.fns.iter().find(|f| f.name == "helper").unwrap();
        assert!(!helper.is_pub);
    }

    #[test]
    fn test_spans_cover_cfg_test_items() {
        let m = FileModel::parse("crates/x/src/lib.rs", SRC);
        let pos = m.src.find("tx_begin").unwrap();
        assert!(m.in_test(pos));
        let pos = m.src.find("helper(x)").unwrap();
        assert!(!m.in_test(pos));
    }

    #[test]
    fn calls_are_attributed_to_the_innermost_fn() {
        let m = FileModel::parse("crates/x/src/lib.rs", SRC);
        let outer = m.fns.iter().find(|f| f.name == "outer").unwrap();
        let calls = calls_in(&m.scrubbed, outer.body.clone());
        assert!(calls.iter().any(|(n, _)| n == "helper"));
    }

    #[test]
    fn tests_and_benches_dirs_are_test_code() {
        let m = FileModel::parse("crates/x/tests/t.rs", "fn f() {}");
        assert!(m.in_test(0));
    }
}
