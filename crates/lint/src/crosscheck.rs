//! Static ⊇ dynamic cross-check.
//!
//! `mm_scope --emit-lock-edges PATH` dumps every lock-nesting edge the
//! telemetry layer observed at runtime (`mm-lock-edges/v1`). The static
//! lock graph claims to over-approximate real behavior; this module makes
//! that claim falsifiable: every observed edge must already be in the
//! static graph. A missing edge means the summary builder severed a call
//! chain (stoplist too aggressive, an unresolved receiver, a new helper
//! not in the tables) — exactly the soundness bugs a name-based
//! non-parser can develop silently.
//!
//! The converse (static edges never observed) is expected and fine: the
//! static side keeps edges for paths the scenario didn't exercise.

use crate::lockgraph::LockGraph;
use crate::summary::name_of_rank;

/// Parse an `mm-lock-edges/v1` document into `(from_rank, to_rank)`
/// pairs. Hand-rolled scan over the two pinned keys — same dependency-free
/// discipline as the allowlist parser.
pub fn parse_edges(text: &str) -> Result<Vec<(u8, u8)>, String> {
    if !text.contains("\"schema\": \"mm-lock-edges/v1\"") {
        return Err("not an mm-lock-edges/v1 document (schema key missing)".into());
    }
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(f) = rest.find("\"from_rank\":") {
        let from = read_u8(&rest[f + "\"from_rank\":".len()..])?;
        rest = &rest[f + "\"from_rank\":".len()..];
        let Some(t) = rest.find("\"to_rank\":") else {
            return Err("edge with from_rank but no to_rank".into());
        };
        let to = read_u8(&rest[t + "\"to_rank\":".len()..])?;
        rest = &rest[t + "\"to_rank\":".len()..];
        out.push((from, to));
    }
    Ok(out)
}

fn read_u8(s: &str) -> Result<u8, String> {
    let s = s.trim_start();
    let digits: String = s.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse::<u8>().map_err(|_| format!("bad rank number near `{}`", &s[..s.len().min(16)]))
}

/// Observed edges absent from the static graph (empty means the
/// cross-check holds). Self-edges are compared too: the static side never
/// stores them, so an observed same-rank nesting always fails — as it
/// should, since the rank order forbids it outright.
pub fn missing(graph: &LockGraph, observed: &[(u8, u8)]) -> Vec<(u8, u8)> {
    let mut out: Vec<(u8, u8)> =
        observed.iter().copied().filter(|&(f, t)| !graph.has(f, t)).collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Render a failure report for `mm-lint crosscheck`.
pub fn report(miss: &[(u8, u8)]) -> String {
    let mut s = String::new();
    for (f, t) in miss {
        s.push_str(&format!(
            "observed at runtime but missing from the static lock graph: {} ({f}) -> {} ({t})\n",
            name_of_rank(*f),
            name_of_rank(*t),
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;

    const SAMPLE: &str = r#"{
  "schema": "mm-lock-edges/v1",
  "edges": [
    { "from": "VecState", "from_rank": 10, "to": "DmshMeta", "to_rank": 50 },
    { "from": "DmshMeta", "from_rank": 50, "to": "DmshStore", "to_rank": 60 }
  ]
}
"#;

    #[test]
    fn parses_the_pinned_schema() {
        assert_eq!(parse_edges(SAMPLE).unwrap(), vec![(10, 50), (50, 60)]);
    }

    #[test]
    fn rejects_other_documents() {
        assert!(parse_edges("{\"schema\": \"mm-lock-graph/v1\"}").is_err());
    }

    #[test]
    fn empty_edge_list_is_valid() {
        let doc = "{\n  \"schema\": \"mm-lock-edges/v1\",\n  \"edges\": []\n}\n";
        assert_eq!(parse_edges(doc).unwrap(), Vec::<(u8, u8)>::new());
    }

    /// The negative test the CI gate relies on: remove an edge from the
    /// static graph and the cross-check must fail.
    #[test]
    fn removed_static_edge_fails_the_check() {
        let m = FileModel::parse(
            "crates/tiered/src/dmsh.rs",
            "fn a(&self) { let g = self.meta.lock(); let h = self.tiers[0].store.lock(); }",
        );
        let (mut g, _) = crate::lockgraph::analyze(std::slice::from_ref(&m));
        assert!(g.has(50, 60));
        let observed = vec![(50u8, 60u8)];
        assert!(missing(&g, &observed).is_empty(), "edge present: check holds");
        g.edges.remove(&(50, 60));
        let miss = missing(&g, &observed);
        assert_eq!(miss, vec![(50, 60)]);
        assert!(report(&miss).contains("DmshMeta (50) -> DmshStore (60)"));
    }
}
