//! The interprocedural lock-graph pass.
//!
//! Consumes the per-function summaries of [`crate::summary`] and replays
//! each function body with a held-lock stack (brace-depth scoped, like the
//! intra-function `lock-order` rule, plus span-scoped helper extents).
//! At every acquisition — direct, or transitive through a resolved call —
//! it records a `held-rank -> acquired-rank` edge with provenance and
//! checks three properties:
//!
//! 1. **lock-graph**: ranks must strictly ascend across function
//!    boundaries, not just within one body (the static mirror of the
//!    `lockorder` debug assertion);
//! 2. **hold-across-io**: no apply-shard or DMSH lock
//!    ([`summary::IO_SENSITIVE_RANKS`]) may be live across backend I/O
//!    (`backend_gate`/`read_at`/`write_at`/`journal_write`) or a shard
//!    dispatch — transitively;
//! 3. **cycle freedom**: the workspace edge set must be acyclic. A cycle
//!    is reported with an empty `line_text`, which no allowlist entry can
//!    match (patterns are non-empty substrings): cycles cannot be waived,
//!    only fixed.
//!
//! The resulting graph serializes deterministically (`mm-lock-graph/v1`
//! JSON and DOT) and is the reference set for the dynamic cross-check
//! (`mm-lint crosscheck` against `mm_scope --emit-lock-edges`).

use std::collections::{BTreeMap, BTreeSet};

use crate::model::FileModel;
use crate::rules::Finding;
use crate::summary::{self, AcqScope, Summaries, IO_SENSITIVE_RANKS, RANKS};

/// One occurrence of a nesting edge: `(path, line, via)`. `via` is the
/// acquisition description — empty-prefix for a direct lock expression, a
/// `caller -> callee` chain for a call-transitive one.
pub type Site = (String, usize, String);

/// The workspace lock graph: `(from_rank, to_rank) -> sites`. Self-edges
/// (same-rank nesting) are reported as findings, not stored as edges.
#[derive(Default)]
pub struct LockGraph {
    pub edges: BTreeMap<(u8, u8), BTreeSet<Site>>,
}

impl LockGraph {
    pub fn has(&self, from: u8, to: u8) -> bool {
        self.edges.contains_key(&(from, to))
    }

    /// Deterministic `mm-lock-graph/v1` JSON (sorted maps throughout).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"mm-lock-graph/v1\",\n  \"nodes\": [\n");
        for (i, (rank, name)) in RANKS.iter().enumerate() {
            s.push_str(&format!(
                "    {{ \"rank\": {rank}, \"name\": \"{name}\" }}{}\n",
                if i + 1 < RANKS.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n  \"edges\": [");
        if self.edges.is_empty() {
            s.push_str("]\n}\n");
            return s;
        }
        s.push('\n');
        let last = self.edges.len() - 1;
        for (i, ((from, to), sites)) in self.edges.iter().enumerate() {
            s.push_str(&format!(
                "    {{\n      \"from\": \"{}\",\n      \"from_rank\": {from},\n      \"to\": \"{}\",\n      \"to_rank\": {to},\n      \"sites\": [\n",
                summary::name_of_rank(*from),
                summary::name_of_rank(*to),
            ));
            let slast = sites.len() - 1;
            for (j, (path, line, via)) in sites.iter().enumerate() {
                s.push_str(&format!(
                    "        {{ \"path\": \"{}\", \"line\": {line}, \"via\": \"{}\" }}{}\n",
                    esc(path),
                    esc(via),
                    if j < slast { "," } else { "" }
                ));
            }
            s.push_str(&format!("      ]\n    }}{}\n", if i < last { "," } else { "" }));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// GraphViz DOT; rank-inversion edges (from >= to) are drawn dashed
    /// red so an allowlisted inversion stays visible in the picture.
    pub fn to_dot(&self) -> String {
        let mut s = String::new();
        s.push_str(
            "digraph lock_graph {\n  rankdir=LR;\n  node [shape=box fontname=\"monospace\"];\n",
        );
        for (rank, name) in RANKS {
            s.push_str(&format!("  {name} [label=\"{name} ({rank})\"];\n"));
        }
        for ((from, to), sites) in &self.edges {
            let style = if from >= to { " color=red style=dashed" } else { "" };
            s.push_str(&format!(
                "  {} -> {} [label=\"{}\"{}];\n",
                summary::name_of_rank(*from),
                summary::name_of_rank(*to),
                sites.len(),
                style,
            ));
        }
        s.push_str("}\n");
        s
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A lock live at some point of the replay.
struct Held {
    rank: u8,
    name: String,
    /// Came from a `lockorder::acquired(..)` annotation: the paired lock
    /// expression may materialize just after it and must not re-report.
    annotation: bool,
    /// Brace depth at acquisition (block-scoped entries pop when their
    /// block closes).
    depth: i32,
    /// Byte offset at which a span-scoped entry expires (scoped-helper
    /// closures); span entries ignore brace scoping — the closure's own
    /// braces must not pop them.
    until: Option<usize>,
}

enum Ev<'a> {
    Acq(&'a summary::DirectAcq),
    Call(&'a summary::ResolvedCall),
    Drop,
}

/// Run the pass: build the graph and collect findings.
pub fn analyze(files: &[FileModel]) -> (LockGraph, Vec<Finding>) {
    let sums = summary::compute(files);
    let mut graph = LockGraph::default();
    let mut findings = Vec::new();
    let mut dedupe: BTreeSet<(String, usize, String)> = BTreeSet::new();
    for &node in &sums.order {
        replay(files, &sums, node, &mut graph, &mut findings, &mut dedupe);
    }
    findings.extend(cycle_findings(&graph));
    findings.sort_by(|a, b| (&a.path, a.line, &a.msg).cmp(&(&b.path, b.line, &b.msg)));
    (graph, findings)
}

fn push_finding(
    findings: &mut Vec<Finding>,
    dedupe: &mut BTreeSet<(String, usize, String)>,
    rule: &'static str,
    m: &FileModel,
    pos: usize,
    msg: String,
) {
    if dedupe.insert((m.path.clone(), m.line(pos), msg.clone())) {
        findings.push(Finding {
            rule,
            path: m.path.clone(),
            line: m.line(pos),
            msg,
            line_text: m.line_text(pos).to_string(),
        });
    }
}

fn replay(
    files: &[FileModel],
    sums: &Summaries,
    node: summary::FnRef,
    graph: &mut LockGraph,
    findings: &mut Vec<Finding>,
    dedupe: &mut BTreeSet<(String, usize, String)>,
) {
    let (fi, gi) = node;
    let m = &files[fi];
    let f = &m.fns[gi];
    let direct = &sums.direct[&node];
    let calls = &sums.calls[&node];
    let mut evs: Vec<(usize, Ev)> = Vec::new();
    for a in direct {
        evs.push((a.pos, Ev::Acq(a)));
    }
    for c in calls {
        evs.push((c.pos, Ev::Call(c)));
    }
    for pos in m.occurrences("drop(").collect::<Vec<_>>() {
        if f.body.contains(&pos)
            && !m.in_test(pos)
            && m.enclosing_fn(pos).map(|g| g.body.start) == Some(f.body.start)
        {
            evs.push((pos, Ev::Drop));
        }
    }
    evs.sort_by_key(|(p, _)| *p);
    if evs.is_empty() {
        return;
    }
    // Ranks directly acquired by a helper call at `pos - 1` (the pattern
    // starts at the `.`): the callee summary restates the same
    // acquisition, which must not double-report as same-rank nesting.
    let helper_at: BTreeMap<usize, u8> =
        direct.iter().filter(|a| !a.annotation).map(|a| (a.pos + 1, a.rank)).collect();

    let b = m.scrubbed.as_bytes();
    let mut depth = 0i32;
    let mut held: Vec<Held> = Vec::new();
    let mut ei = 0usize;
    for i in f.body.clone() {
        held.retain(|h| h.until.is_none_or(|u| u > i));
        while ei < evs.len() && evs[ei].0 == i {
            match &evs[ei].1 {
                Ev::Acq(a) => {
                    if a.annotation && held.iter().any(|h| h.rank == a.rank) {
                        // A `lockorder::acquired(..)` token next to the
                        // lock expression the replay already saw.
                    } else if !a.annotation && held.iter().any(|h| h.annotation && h.rank == a.rank)
                    {
                        // The lock expression paired with an annotation
                        // the replay saw first (token-before-guard order).
                    } else {
                        record_acquire(
                            graph, findings, dedupe, m, &held, a.pos, a.rank, a.name, "",
                        );
                        match a.scope {
                            AcqScope::Transient => {}
                            AcqScope::Block => held.push(Held {
                                rank: a.rank,
                                name: a.name.to_string(),
                                annotation: a.annotation,
                                depth,
                                until: None,
                            }),
                            AcqScope::Span(end) => held.push(Held {
                                rank: a.rank,
                                name: a.name.to_string(),
                                annotation: a.annotation,
                                depth,
                                until: Some(end),
                            }),
                        }
                    }
                }
                Ev::Call(c) => {
                    let cancelled = helper_at.get(&c.pos).copied();
                    // Union of callee-transitive facts across targets,
                    // keeping the lexically-first via chain per rank.
                    let mut ranks: BTreeMap<u8, (String, String)> = BTreeMap::new();
                    let mut io: Option<String> =
                        if c.io_intrinsic { Some(c.name.clone()) } else { None };
                    let mut dispatch: Option<String> =
                        if c.dispatch_intrinsic { Some(c.name.clone()) } else { None };
                    for &t in &c.targets {
                        let cs = sums.of(t);
                        for (&r, (rname, via)) in &cs.acquires {
                            if Some(r) == cancelled {
                                continue;
                            }
                            let chain = if via.is_empty() {
                                c.name.clone()
                            } else {
                                format!("{} -> {}", c.name, via)
                            };
                            ranks.entry(r).or_insert((rname.clone(), chain));
                        }
                        if io.is_none() {
                            if let Some(v) = &cs.io {
                                io = Some(format!("{} -> {}", c.name, v));
                            }
                        }
                        if dispatch.is_none() {
                            if let Some(v) = &cs.dispatch {
                                dispatch = Some(format!("{} -> {}", c.name, v));
                            }
                        }
                    }
                    for (r, (rname, via)) in &ranks {
                        record_acquire(graph, findings, dedupe, m, &held, c.pos, *r, rname, via);
                    }
                    let sensitive: Vec<&Held> =
                        held.iter().filter(|h| IO_SENSITIVE_RANKS.contains(&h.rank)).collect();
                    if !sensitive.is_empty() {
                        let h = sensitive.last().expect("non-empty");
                        if let Some(v) = &io {
                            push_finding(
                                findings, dedupe, "hold-across-io", m, c.pos,
                                format!(
                                    "{} (rank {}) held across backend I/O via `{v}` — stage I/O outside apply/DMSH critical sections",
                                    h.name, h.rank
                                ),
                            );
                        }
                        if let Some(v) = &dispatch {
                            push_finding(
                                findings, dedupe, "hold-across-io", m, c.pos,
                                format!(
                                    "{} (rank {}) held across shard dispatch via `{v}` — the target shard may need this lock",
                                    h.name, h.rank
                                ),
                            );
                        }
                    }
                }
                Ev::Drop => {
                    if let Some(p) = held.iter().rposition(|h| h.until.is_none()) {
                        held.remove(p);
                    }
                }
            }
            ei += 1;
        }
        match b.get(i) {
            Some(b'{') => depth += 1,
            Some(b'}') => {
                depth -= 1;
                held.retain(|h| h.until.is_some() || h.depth <= depth);
            }
            _ => {}
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn record_acquire(
    graph: &mut LockGraph,
    findings: &mut Vec<Finding>,
    dedupe: &mut BTreeSet<(String, usize, String)>,
    m: &FileModel,
    held: &[Held],
    pos: usize,
    rank: u8,
    name: &str,
    via: &str,
) {
    for h in held {
        if h.rank != rank {
            graph.edges.entry((h.rank, rank)).or_default().insert((
                m.path.clone(),
                m.line(pos),
                via.to_string(),
            ));
        }
    }
    if let Some(h) = held.iter().rev().find(|h| h.rank >= rank) {
        let how = if via.is_empty() { String::new() } else { format!(" via `{via}`") };
        push_finding(
            findings, dedupe, "lock-graph", m, pos,
            format!(
                "acquiring {name} (rank {rank}){how} while {} (rank {}) is held — cross-function ranks must strictly ascend",
                h.name, h.rank
            ),
        );
    }
}

/// Report every rank that sits on a directed cycle. Reachability closure
/// over the 10-node rank digraph; cycles carry an empty `line_text`, so
/// no allowlist entry can waive them.
fn cycle_findings(graph: &LockGraph) -> Vec<Finding> {
    let idx = |r: u8| RANKS.iter().position(|(q, _)| *q == r).expect("known rank");
    let n = RANKS.len();
    let mut reach = vec![[false; 10]; n];
    for &(from, to) in graph.edges.keys() {
        reach[idx(from)][idx(to)] = true;
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if reach[i][k] && reach[k][j] {
                    reach[i][j] = true;
                }
            }
        }
    }
    let cyclic: Vec<&str> = (0..n).filter(|&i| reach[i][i]).map(|i| RANKS[i].1).collect();
    if cyclic.is_empty() {
        return Vec::new();
    }
    let inversions: Vec<String> = graph
        .edges
        .keys()
        .filter(|(f, t)| f >= t)
        .map(|(f, t)| format!("{} -> {}", summary::name_of_rank(*f), summary::name_of_rank(*t)))
        .collect();
    vec![Finding {
        rule: "lock-graph",
        path: "(workspace)".to_string(),
        line: 0,
        msg: format!(
            "cycle among ranked locks: {{{}}} — inversion edges: {} (cycles cannot be allowlisted; break an edge)",
            cyclic.join(", "),
            inversions.join(", "),
        ),
        line_text: String::new(),
    }]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models(files: &[(&str, &str)]) -> Vec<FileModel> {
        files.iter().map(|(p, s)| FileModel::parse(p, s)).collect()
    }

    #[test]
    fn direct_nesting_builds_edges_and_flags_descent() {
        let fs = models(&[(
            "crates/tiered/src/dmsh.rs",
            "fn ok(&self) { let a = self.meta.lock(); let b = self.tiers[0].store.lock(); }\n\
             fn bad(&self) { let a = self.tiers[0].store.lock(); let b = self.meta.lock(); }",
        )]);
        let (g, f) = analyze(&fs);
        assert!(g.has(50, 60));
        assert!(g.has(60, 50));
        let bad: Vec<_> = f.iter().filter(|x| x.rule == "lock-graph").collect();
        assert_eq!(bad.len(), 2, "{bad:?}"); // descent + the resulting cycle
        assert!(bad.iter().any(|x| x.msg.contains("cycle among ranked locks")));
    }

    #[test]
    fn call_edge_violation_is_interprocedural() {
        let fs = models(&[
            (
                "crates/core/src/runtime/mod.rs",
                "fn takes_meta(&self) { let g = self.vectors.lock(); }",
            ),
            (
                "crates/core/src/runtime/stager.rs",
                "fn under_apply(&self, rt: &Rt) { rt.with_apply_lock(0, id, || { rt.takes_meta(); }); }",
            ),
        ]);
        let (g, f) = analyze(&fs);
        assert!(g.has(40, 30), "{:?}", g.edges.keys().collect::<Vec<_>>());
        let v: Vec<_> = f.iter().filter(|x| x.rule == "lock-graph" && x.line > 0).collect();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("via `takes_meta"), "{}", v[0].msg);
    }

    #[test]
    fn hold_across_io_flags_transitive_backend_io() {
        let fs = models(&[(
            "crates/core/src/runtime/stager.rs",
            "fn page_out(&self) { backend_gate(rt, t, m, n, ctx); }\n\
                 fn drain(&self, rt: &Rt) { rt.with_apply_lock(0, id, || { self.page_out(); }); }",
        )]);
        let (_, f) = analyze(&fs);
        let io: Vec<_> = f.iter().filter(|x| x.rule == "hold-across-io").collect();
        assert_eq!(io.len(), 1, "{io:?}");
        assert!(io[0].msg.contains("page_out -> backend_gate"), "{}", io[0].msg);
    }

    #[test]
    fn io_without_sensitive_lock_is_fine() {
        let fs = models(&[(
            "crates/core/src/runtime/mod.rs",
            "fn open_all(&self) { let g = self.vectors.lock(); backend_gate(rt, t, m, n, ctx); }",
        )]);
        let (_, f) = analyze(&fs);
        assert!(f.iter().all(|x| x.rule != "hold-across-io"), "{f:?}");
    }

    #[test]
    fn span_releases_after_closing_paren() {
        let fs = models(&[(
            "crates/core/src/runtime/stager.rs",
            "fn f(&self, rt: &Rt) { rt.with_apply_lock(0, id, || { touch(); }); let g = rt.vectors.lock(); }",
        )]);
        let (g, f) = analyze(&fs);
        // RtMeta taken after the span closed: no 40 -> 30 edge, no finding.
        assert!(!g.has(40, 30), "{:?}", g.edges.keys().collect::<Vec<_>>());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn guard_helper_call_does_not_self_report() {
        let fs = models(&[
            (
                "crates/tiered/src/dmsh.rs",
                "pub fn lock_meta(&self) -> Guard { let g = self.meta.lock(); let _lo = lockorder::acquired(LockRank::DmshMeta); g }",
            ),
            (
                "crates/core/src/pcache.rs",
                "fn reader(&self, dmsh: &Dmsh) { let g = dmsh.lock_meta(); }",
            ),
        ]);
        let (_, f) = analyze(&fs);
        assert!(f.is_empty(), "helper + its own summary must cancel: {f:?}");
    }

    #[test]
    fn annotation_alone_still_counts() {
        let fs = models(&[(
            "crates/core/src/runtime/mod.rs",
            "fn t(&self) { let _lo = lockorder::acquired(LockRank::ApplyVictim); let g = self.vectors.lock(); }",
        )]);
        let (g, f) = analyze(&fs);
        assert!(g.has(45, 30));
        assert_eq!(f.iter().filter(|x| x.rule == "lock-graph" && x.line > 0).count(), 1);
    }

    #[test]
    fn cycle_finding_cannot_be_allowlisted() {
        let fs = models(&[(
            "crates/tiered/src/dmsh.rs",
            "fn a(&self) { let g = self.meta.lock(); let h = self.tiers[0].store.lock(); }\n\
             fn b(&self) { let h = self.tiers[0].store.lock(); let g = self.meta.lock(); }",
        )]);
        let (_, f) = analyze(&fs);
        let cyc = f.iter().find(|x| x.msg.contains("cycle")).expect("cycle reported");
        assert!(cyc.line_text.is_empty(), "cycle must not carry matchable line text");
        let allow = crate::allow::Allowlist::parse(
            "[[allow]]\nrule = \"lock-graph\"\npath = \"crates/tiered/src/dmsh.rs\"\npattern = \"meta\"\nreason = \"testing the gate\"\n",
        )
        .unwrap();
        assert!(!allow.permits(cyc.rule, &cyc.path, &cyc.line_text));
    }

    #[test]
    fn json_and_dot_are_deterministic() {
        let src = "fn a(&self) { let g = self.meta.lock(); let h = self.tiers[0].store.lock(); }";
        let fs = models(&[("crates/tiered/src/dmsh.rs", src)]);
        let (g1, _) = analyze(&fs);
        let (g2, _) = analyze(&fs);
        assert_eq!(g1.to_json(), g2.to_json());
        assert_eq!(g1.to_dot(), g2.to_dot());
        assert!(g1.to_json().contains("\"schema\": \"mm-lock-graph/v1\""));
        assert!(g1.to_json().contains("\"from\": \"DmshMeta\""));
        assert!(g1.to_dot().contains("DmshMeta -> DmshStore"));
    }

    #[test]
    fn empty_graph_serializes_closed_form() {
        let g = LockGraph::default();
        assert!(g.to_json().ends_with("\"edges\": []\n}\n"), "{}", g.to_json());
    }
}
