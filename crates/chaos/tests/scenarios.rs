//! The chaos scenario matrix as tests, at a different seed than the CI
//! binary run (ci.sh additionally runs `mm_chaos` twice and byte-diffs
//! stdout for determinism).

use megammap_chaos::{run_scenario, Scenario};

#[test]
fn node_crash_mid_commit_bit_matches() {
    let r = run_scenario(Scenario::NodeCrashMidCommit, 7);
    assert!(r.matched(), "crash+journal-replay run must bit-match fault-free");
    assert!(r.evidence_seen, "the crash must actually be observed and recovered");
    assert!(r.slower, "recovery has a virtual-time cost");
}

#[test]
fn partition_during_collective_bit_matches() {
    let r = run_scenario(Scenario::PartitionDuringCollective, 7);
    assert!(r.matched(), "partition stalls collectives but never changes values");
    assert!(r.slower, "the stall must show up in the makespan");
}

#[test]
fn tier_death_under_prefetch_bit_matches() {
    let r = run_scenario(Scenario::TierDeathUnderPrefetch, 7);
    assert!(r.matched(), "tier evacuation must be value-transparent");
    assert!(r.evidence_seen, "the dead DRAM tier must demote its blobs");
}

#[test]
fn backend_flap_bit_matches() {
    let r = run_scenario(Scenario::BackendFlap, 7);
    assert!(r.matched(), "retried checkpoint writes must land identical bytes");
    assert!(r.evidence_seen, "the stager must have retried I/O");
}
