//! # mm-chaos — deterministic fault injection for the MegaMmap runtime
//!
//! The paper's DSM must survive the failures real tiered clusters see:
//! nodes crash mid-commit, networks partition during collectives, tier
//! devices die under load, and storage backends flap. This crate drives
//! the whole stack through those failures *deterministically* — every
//! fault is scheduled on the simulation's virtual clock by a seeded
//! [`FaultPlan`], so a scenario replays bit-for-bit: no wall-clock, no
//! real randomness, no flaky tests.
//!
//! The correctness bar is strict: a workload run under faults must
//! produce **bit-identical results** to the fault-free run. Fault
//! injection may change *timing* (that is the point — recovery costs show
//! up in the causal trace), but never *values*. Each scenario therefore
//! runs its workload twice — once clean, once faulted — and compares a
//! mix64-chained fingerprint over every result value (centroids, inertia,
//! field sums, and the bytes of every persisted object).
//!
//! Recovery is exercised across four layers:
//!
//! 1. **Retry/backoff** — stager I/O against a flapping backend retries
//!    with seeded exponential backoff in virtual time and surfaces typed
//!    [`MmError::Unavailable`](megammap::MmError) on exhaustion;
//! 2. **Page re-homing** — a node crash wipes its scache shard; pages are
//!    re-homed over the surviving nodes by rendezvous hashing and
//!    re-faulted from backends;
//! 3. **Intent journal** — acknowledged writes are logged write-ahead, so
//!    a crash between commit and flush replays to exact contents;
//! 4. **Tier demotion** — a retired DMSH device evacuates its blobs to
//!    the tiers below and placement routes around it.
//!
//! See `mm_chaos --help`-less usage: `mm_chaos [scenario]` runs the whole
//! matrix (or one named scenario); stdout is byte-identical across runs
//! of the same seed (`MM_CHAOS_SEED`). Timing diagnostics go to stderr.

use std::sync::Arc;

use megammap::prelude::*;
use megammap_cluster::{Cluster, ClusterSpec};
use megammap_formats::{Backends, DataUrl};
use megammap_sim::fault::mix64;
use megammap_sim::{DeviceSpec, FaultPlan, SimTime, GIB, KIB, MIB};
use megammap_workloads::datagen::{bench_params, generate};
use megammap_workloads::gray_scott::mega::MegaGs;
use megammap_workloads::gray_scott::{self, GsConfig};
use megammap_workloads::kmeans::{self, KMeansConfig};

/// KMeans dataset object (fresh `Backends` per run, so no cross-run state).
const KM_DATA: &str = "obj://chaos/pts.bin";
/// KMeans persisted-assignment object.
const KM_ASSIGN: &str = "obj://chaos/assign.bin";
/// Gray-Scott checkpoint base URL (fields at `.u0/.u1/.v0/.v1`).
const GS_CKPT: &str = "obj://chaos/gs";
/// Points in the KMeans dataset (~144 KiB of Point3D).
const KM_POINTS: usize = 12_000;

/// Outcome of one workload run under a (possibly absent) fault plan.
pub struct RunOutcome {
    /// mix64-chained fingerprint over every result value and every
    /// persisted object's bytes.
    pub result_bits: u64,
    /// Virtual makespan. Diagnostic only — never part of the fingerprint:
    /// faults legitimately change timing, never values.
    pub makespan_ns: SimTime,
    /// Whether the scenario's recovery machinery left telemetry evidence
    /// (crash/retry/demotion counters) behind.
    pub evidence_seen: bool,
}

/// The named scenarios of the chaos matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Crash node 1 while KMeans commits assignments; the journal replays
    /// acknowledged writes and pages re-home over the survivors.
    NodeCrashMidCommit,
    /// Partition nodes 0↔2 across several Lloyd allreduces; collectives
    /// stall deterministically until the partition heals.
    PartitionDuringCollective,
    /// Retire node 1's DRAM tier mid-run; its blobs evacuate downward and
    /// placement (incl. prefetched pages) routes around the dead device.
    TierDeathUnderPrefetch,
    /// Two transient outages of the Gray-Scott checkpoint backend; stager
    /// writes retry with seeded virtual-time backoff.
    BackendFlap,
}

impl Scenario {
    /// Matrix order (also the `mm_chaos` output order).
    pub const ALL: [Scenario; 4] = [
        Scenario::NodeCrashMidCommit,
        Scenario::PartitionDuringCollective,
        Scenario::TierDeathUnderPrefetch,
        Scenario::BackendFlap,
    ];

    /// Stable scenario name (CLI argument and output label).
    pub fn name(self) -> &'static str {
        match self {
            Scenario::NodeCrashMidCommit => "node-crash-mid-commit",
            Scenario::PartitionDuringCollective => "partition-during-collective",
            Scenario::TierDeathUnderPrefetch => "tier-death-under-prefetch",
            Scenario::BackendFlap => "backend-flap",
        }
    }

    /// Parse a CLI scenario name.
    pub fn parse(s: &str) -> Option<Scenario> {
        Scenario::ALL.into_iter().find(|sc| sc.name() == s)
    }

    /// The telemetry signal whose presence proves the fault actually ran
    /// through the recovery machinery (and not past it).
    pub fn evidence(self) -> &'static str {
        match self {
            Scenario::NodeCrashMidCommit => "chaos.node_crashes > 0",
            Scenario::PartitionDuringCollective => "faulted makespan > baseline",
            Scenario::TierDeathUnderPrefetch => "tier.demotions[node1] > 0",
            Scenario::BackendFlap => "stager.io_retries > 0",
        }
    }

    /// The seeded fault plan. Windows are fixed virtual times chosen to
    /// land inside the workload run (see the calibration notes in
    /// `mm_chaos`); everything downstream derives from the seed and these
    /// constants, so a scenario is a pure function of `(seed)`.
    pub fn plan(self, seed: u64) -> Arc<FaultPlan> {
        let ms = 1_000_000u64; // virtual millisecond
        match self {
            Scenario::NodeCrashMidCommit => {
                FaultPlan::new(seed).crash_node(1, 2 * ms, 4 * ms).build()
            }
            Scenario::PartitionDuringCollective => {
                FaultPlan::new(seed).partition(0, 2, ms, 3 * ms).build()
            }
            Scenario::TierDeathUnderPrefetch => {
                FaultPlan::new(seed).retire_tier(1, 0, 2 * ms).build()
            }
            Scenario::BackendFlap => FaultPlan::new(seed)
                .backend_outage("chaos/gs", ms, Some(2 * ms))
                .backend_outage("chaos/gs", 5 * ms, Some(6 * ms))
                .build(),
        }
    }
}

/// One row of the matrix: fingerprints of the clean and faulted runs.
pub struct ScenarioReport {
    /// Which scenario ran.
    pub scenario: Scenario,
    /// Fingerprint of the fault-free run.
    pub baseline_bits: u64,
    /// Fingerprint of the faulted run — must equal `baseline_bits`.
    pub faulted_bits: u64,
    /// Whether the scenario's telemetry evidence was observed.
    pub evidence_seen: bool,
    /// Whether recovery cost showed up as virtual-time slowdown.
    pub slower: bool,
}

impl ScenarioReport {
    /// The acceptance criterion: values bit-match the fault-free run.
    pub fn matched(&self) -> bool {
        self.baseline_bits == self.faulted_bits
    }
}

/// mix a float's exact bit pattern into the fingerprint chain.
fn mixf(h: u64, v: f64) -> u64 {
    mix64(h ^ v.to_bits())
}

/// Fingerprint a persisted object's bytes (little-endian 8-byte words,
/// mix64-chained, length included).
pub fn object_bits(backends: &Backends, url: &str) -> u64 {
    let obj = backends.open(&DataUrl::parse(url).expect("object url")).expect("open object");
    let len = obj.len().expect("object len");
    let mut h = mix64(len ^ 0x6F62_6A73);
    let mut buf = vec![0u8; 64 * 1024];
    let mut off = 0u64;
    while off < len {
        let got = obj.read_at(off, &mut buf).expect("read object");
        if got == 0 {
            break;
        }
        for chunk in buf[..got].chunks(8) {
            let mut w = 0u64;
            for (i, &b) in chunk.iter().enumerate() {
                w |= (b as u64) << (8 * i);
            }
            h = mix64(h ^ w);
        }
        off += got as u64;
    }
    h
}

/// Run distributed KMeans (3 nodes × 1 proc, journaled obj:// data and
/// assignments) under `plan` and fingerprint the results.
pub fn run_kmeans(seed: u64, plan: Option<Arc<FaultPlan>>) -> RunOutcome {
    let cluster = Cluster::new(ClusterSpec::new(3, 1).dram_per_node(GIB));
    let mut cfg = RuntimeConfig::default()
        .with_page_size(4 * KIB)
        .with_tiers(vec![DeviceSpec::dram(2 * MIB), DeviceSpec::nvme(32 * MIB)])
        .with_journal(true);
    if let Some(p) = plan {
        cfg = cfg.with_faults(p);
    }
    let rt = Runtime::new(&cluster, cfg);
    let data = Arc::new(generate(bench_params(KM_POINTS)));
    let obj = rt.backends().open(&DataUrl::parse(KM_DATA).expect("data url")).expect("open data");
    data.write_object(obj.as_ref()).expect("seed dataset");
    let km = KMeansConfig { seed, ..KMeansConfig::default() };
    let rt2 = rt.clone();
    let (outs, rep) = cluster.run(move |p| {
        kmeans::mega::run(
            p,
            &kmeans::mega::MegaKMeans {
                rt: &rt2,
                url: KM_DATA.into(),
                assign_url: Some(KM_ASSIGN.into()),
                cfg: km,
                pcache_bytes: 32 * KIB,
            },
        )
    });
    let r = &outs[0];
    let mut h = mix64(seed ^ 0x6b6d_6561_6e73);
    for c in &r.centroids {
        h = mix64(h ^ c.x.to_bits() as u64);
        h = mix64(h ^ c.y.to_bits() as u64);
        h = mix64(h ^ c.z.to_bits() as u64);
    }
    h = mixf(h, r.inertia);
    h = mix64(h ^ object_bits(rt.backends(), KM_ASSIGN));
    let tel = cluster.telemetry();
    // Labels must match the emitters' own registrations exactly — a
    // different label set is a different counter.
    let evidence_seen = tel.counter("chaos", "node_crashes", &[]).get() > 0
        || tel.counter("tier", "demotions", &[("node", "node1"), ("tier", "DRAM")]).get() > 0;
    RunOutcome { result_bits: h, makespan_ns: rep.makespan_ns, evidence_seen }
}

/// Run Gray-Scott (2 nodes × 1 proc, journaled obj:// checkpoints) under
/// `plan` and fingerprint the field sums plus every checkpoint object.
pub fn run_gray_scott(plan: Option<Arc<FaultPlan>>) -> RunOutcome {
    let cluster = Cluster::new(ClusterSpec::new(2, 1).dram_per_node(GIB));
    let mut cfg = RuntimeConfig::default()
        .with_page_size(4 * KIB)
        .with_tiers(vec![DeviceSpec::dram(4 * MIB), DeviceSpec::nvme(32 * MIB)])
        .with_journal(true);
    if let Some(p) = plan {
        cfg = cfg.with_faults(p);
    }
    let rt = Runtime::new(&cluster, cfg);
    let gs = GsConfig::new(16, 6).plotgap(2);
    let rt2 = rt.clone();
    let (outs, rep) = cluster.run(move |p| {
        gray_scott::mega::run(
            p,
            &MegaGs {
                rt: &rt2,
                cfg: gs,
                pcache_bytes: 32 * KIB,
                ckpt_url: Some(GS_CKPT.into()),
                tag: "chaos".into(),
            },
        )
    });
    let r = &outs[0];
    let mut h = mix64(0x6772_6179);
    h = mixf(h, r.sum_u);
    h = mixf(h, r.sum_v);
    for field in ["u0", "u1", "v0", "v1"] {
        h = mix64(h ^ object_bits(rt.backends(), &format!("{GS_CKPT}.{field}")));
    }
    let evidence_seen =
        cluster.telemetry().counter("stager", "io_retries", &[("backend", "obj")]).get() > 0;
    RunOutcome { result_bits: h, makespan_ns: rep.makespan_ns, evidence_seen }
}

/// Run one scenario: the fault-free baseline, then the faulted run, and
/// compare fingerprints.
pub fn run_scenario(sc: Scenario, seed: u64) -> ScenarioReport {
    let plan = sc.plan(seed);
    let (base, faulted) = match sc {
        Scenario::BackendFlap => (run_gray_scott(None), run_gray_scott(Some(plan))),
        _ => (run_kmeans(seed, None), run_kmeans(seed, Some(plan))),
    };
    eprintln!(
        "# {}: baseline {} ns, faulted {} ns (virtual), evidence_seen {}",
        sc.name(),
        base.makespan_ns,
        faulted.makespan_ns,
        faulted.evidence_seen,
    );
    ScenarioReport {
        scenario: sc,
        baseline_bits: base.result_bits,
        faulted_bits: faulted.result_bits,
        evidence_seen: faulted.evidence_seen,
        slower: faulted.makespan_ns > base.makespan_ns,
    }
}

/// Run the whole matrix (or one scenario) in a stable order.
pub fn run_matrix(seed: u64, only: Option<Scenario>) -> Vec<ScenarioReport> {
    Scenario::ALL
        .into_iter()
        .filter(|sc| only.is_none_or(|o| o == *sc))
        .map(|sc| run_scenario(sc, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_round_trip() {
        for sc in Scenario::ALL {
            assert_eq!(Scenario::parse(sc.name()), Some(sc));
        }
        assert_eq!(Scenario::parse("nope"), None);
    }

    #[test]
    fn plans_are_seeded_and_nonempty() {
        for sc in Scenario::ALL {
            let p = sc.plan(42);
            assert!(!p.is_empty(), "{} must schedule faults", sc.name());
            assert_eq!(p.seed(), 42);
        }
    }
}
