//! `mm_chaos` — run the seeded fault-injection scenario matrix and verify
//! that every faulted run produces results **bit-identical** to its
//! fault-free baseline.
//!
//! Usage: `mm_chaos [scenario]` — no argument runs the whole matrix. The
//! seed comes from `MM_CHAOS_SEED` (default 42). Because every fault is
//! scheduled on the virtual clock by a seeded [`FaultPlan`]
//! (megammap_sim::FaultPlan), stdout is **byte-identical across runs of
//! the same seed** — the CI chaos stage runs the binary twice and diffs.
//! Virtual-time diagnostics (makespans, recovery-cost attribution) go to
//! stderr, which is excluded from the determinism diff.
//!
//! Exit status: 0 if every scenario matched, 1 otherwise.

use megammap_chaos::{run_matrix, Scenario};

fn main() {
    let seed: u64 = std::env::var("MM_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42);
    let only = match std::env::args().nth(1) {
        Some(name) => match Scenario::parse(&name) {
            Some(sc) => Some(sc),
            None => {
                eprintln!("unknown scenario {name:?}; known:");
                for sc in Scenario::ALL {
                    eprintln!("  {}", sc.name());
                }
                std::process::exit(2);
            }
        },
        None => None,
    };

    println!("mm_chaos — seeded deterministic fault-injection matrix (seed {seed})");
    println!("scenario                      baseline         faulted          verdict");
    let reports = run_matrix(seed, only);
    let mut failed = 0usize;
    for r in &reports {
        let verdict = if !r.matched() {
            failed += 1;
            "MISMATCH"
        } else if !r.evidence_seen && !r.slower {
            // Values matched but the fault left no trace at all: the
            // windows missed the run and nothing was actually tested.
            failed += 1;
            "NO-FAULT"
        } else {
            "MATCH"
        };
        println!(
            "{:<28}  {:016x} {:016x} {}  [{}]",
            r.scenario.name(),
            r.baseline_bits,
            r.faulted_bits,
            verdict,
            r.scenario.evidence(),
        );
    }
    println!(
        "{}/{} scenarios bit-matched their fault-free runs",
        reports.len() - failed,
        reports.len()
    );
    std::process::exit(if failed > 0 { 1 } else { 0 });
}
