//! Model checks for [`DLock`]: no lost wakeup, no double grant.
//!
//! Run with:
//!
//! ```text
//! cargo test -p megammap-cluster --features loom-model --test loom_dlock
//! ```
//!
//! The checks drive [`DLock::lock_raw`], the Proc-free acquire used by
//! model harnesses: real mutual exclusion comes from the underlying
//! (loom-backed) `parking_lot` mutex, and the virtual grant time is
//! returned to the caller.
#![cfg(feature = "loom-model")]

use std::sync::Arc;

use loom::sync::atomic::{AtomicUsize, Ordering};
use megammap_cluster::DLock;

const RPC: u64 = 100;
const WORK: u64 = 1_000;

/// Two contenders: critical sections exclude each other (a shared counter
/// incremented non-atomically inside the section never tears), each grant
/// time is distinct and monotone, and both acquisitions are counted.
#[test]
fn no_double_grant_and_exclusion() {
    loom::model(|| {
        let lock = Arc::new(DLock::with_rpc_ns(RPC));
        let in_cs = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let l = Arc::clone(&lock);
            let cs = Arc::clone(&in_cs);
            handles.push(loom::thread::spawn(move || {
                let (guard, grant) = l.lock_raw(0);
                assert_eq!(cs.fetch_add(1, Ordering::SeqCst), 0, "critical sections overlap");
                cs.fetch_sub(1, Ordering::SeqCst);
                guard.release(grant + WORK);
                grant
            }));
        }
        let mut grants: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        grants.sort_unstable();
        // First holder granted at rpc; the second waits for the first's
        // virtual release and pays its own round trip.
        assert_eq!(grants[0], RPC);
        assert_eq!(grants[1], RPC + WORK + RPC, "second grant must follow the first release");
        assert_eq!(lock.acquisitions(), 2, "every acquisition is counted exactly once");
    });
}

/// A waiter blocked on the lock is always woken when the holder releases —
/// no lost wakeup: the model run would deadlock (and the loom scheduler
/// would abort it) if the release failed to unblock the waiter.
#[test]
fn release_always_wakes_the_waiter() {
    loom::model(|| {
        let lock = Arc::new(DLock::with_rpc_ns(RPC));
        let l = Arc::clone(&lock);
        let t = loom::thread::spawn(move || {
            let (guard, grant) = l.lock_raw(0);
            guard.release(grant + WORK);
        });
        let (guard, grant) = lock.lock_raw(0);
        guard.release(grant + WORK);
        t.join().unwrap();
        assert_eq!(lock.acquisitions(), 2);
    });
}

/// A holder that leaks its guard (the model of a crashed node) is evicted
/// once an acquirer's virtual clock passes the lease deadline, and the
/// handover time is exact: deadline + rpc.
#[test]
fn lease_break_reclaims_leaked_holder() {
    const LEASE: u64 = 10_000;
    loom::model(|| {
        let lock = Arc::new(DLock::with_lease(RPC, LEASE));
        let l = Arc::clone(&lock);
        let t = loom::thread::spawn(move || {
            let (guard, grant) = l.lock_raw(0);
            std::mem::forget(guard); // crash: never releases, never drops
            grant
        });
        let grant1 = t.join().unwrap();
        assert_eq!(grant1, RPC);
        // Before expiry the lock is stuck; at expiry it is reclaimed.
        assert!(lock.try_lock_raw(grant1 + LEASE - 1).is_none());
        let (guard, grant2) = lock.lock_raw(grant1 + LEASE);
        assert_eq!(grant2, grant1 + LEASE + RPC, "handover at lease deadline + rpc");
        guard.release(grant2 + WORK);
        assert_eq!(lock.lease_breaks(), 1);
        assert_eq!(lock.acquisitions(), 1, "only the live holder released");
    });
}

/// try_lock_raw never blocks: it either acquires or observes the holder,
/// and a successful try counts as an acquisition.
#[test]
fn try_lock_never_blocks_or_double_grants() {
    loom::model(|| {
        let lock = Arc::new(DLock::with_rpc_ns(RPC));
        let l = Arc::clone(&lock);
        let t = loom::thread::spawn(move || match l.try_lock_raw(0) {
            Some((guard, grant)) => {
                guard.release(grant + WORK);
                true
            }
            None => false,
        });
        let here = match lock.try_lock_raw(0) {
            Some((guard, grant)) => {
                guard.release(grant + WORK);
                true
            }
            None => false,
        };
        let there = t.join().unwrap();
        // At least one of the two non-blocking attempts must have won.
        assert!(here || there, "an uncontended try_lock must succeed");
        let won = here as u64 + there as u64;
        assert_eq!(lock.acquisitions(), won);
    });
}
