//! Distributed locks in virtual time.
//!
//! MegaMmap leaves coarse coherence to "synchronization points such as
//! barriers and locks (similar to any MPI or PGAS program)". [`DLock`] is
//! that lock: mutual exclusion is real (a `parking_lot` mutex serializes the
//! critical sections of the simulated processes) and the *waiting time* is
//! charged in virtual time — an acquirer resumes no earlier than the
//! previous holder's virtual release time plus a network round trip.

use std::sync::Arc;

use megammap_sim::SimTime;
use parking_lot::{Mutex, MutexGuard};

use crate::proc::Proc;

#[derive(Debug, Default)]
struct LockState {
    /// Virtual time at which the previous holder released the lock.
    free_at: SimTime,
    /// Total acquisitions (diagnostics).
    acquisitions: u64,
}

/// A distributed lock shared by simulated processes.
#[derive(Debug, Clone, Default)]
pub struct DLock {
    state: Arc<Mutex<LockState>>,
    /// Cost of the acquire/release message exchange, ns.
    rpc_ns: u64,
}

/// RAII guard: releases the lock (and stamps the virtual release time) on
/// drop.
pub struct DLockGuard<'a> {
    raw: Option<DLockRawGuard<'a>>,
    proc: &'a Proc,
}

/// Proc-free guard returned by [`DLock::lock_raw`]: the caller supplies
/// virtual times explicitly. Used by model checks (which have no
/// [`Proc`]) and by [`DLockGuard`] internally.
pub struct DLockRawGuard<'a> {
    guard: Option<MutexGuard<'a, LockState>>,
}

impl DLockRawGuard<'_> {
    /// Release the lock, stamping `now` as the virtual release time.
    pub fn release(mut self, now: SimTime) {
        if let Some(mut g) = self.guard.take() {
            g.free_at = now;
            g.acquisitions += 1;
        }
    }
}

impl Drop for DLockRawGuard<'_> {
    fn drop(&mut self) {
        // Dropped without an explicit release (e.g. unwinding): count the
        // acquisition but leave `free_at` at the previous holder's stamp.
        if let Some(mut g) = self.guard.take() {
            g.acquisitions += 1;
        }
    }
}

impl DLock {
    /// Create a lock whose acquire costs one RDMA round trip (~5 µs).
    pub fn new() -> Self {
        Self { state: Arc::new(Mutex::new(LockState::default())), rpc_ns: 5_000 }
    }

    /// Create a lock with a custom RPC cost.
    pub fn with_rpc_ns(rpc_ns: u64) -> Self {
        Self { state: Arc::new(Mutex::new(LockState::default())), rpc_ns }
    }

    /// Acquire the lock on behalf of `p`. Blocks (in real time) until the
    /// lock is free, then advances `p`'s clock to
    /// `max(now, previous release) + rpc`.
    pub fn lock<'a>(&'a self, p: &'a Proc) -> DLockGuard<'a> {
        let (raw, grant) = self.lock_raw(p.now());
        p.advance_to(grant);
        DLockGuard { raw: Some(raw), proc: p }
    }

    /// Try to acquire without blocking; `None` if held.
    pub fn try_lock<'a>(&'a self, p: &'a Proc) -> Option<DLockGuard<'a>> {
        let (raw, grant) = self.try_lock_raw(p.now())?;
        p.advance_to(grant);
        Some(DLockGuard { raw: Some(raw), proc: p })
    }

    /// Lower-level acquire for callers without a [`Proc`] (model checks,
    /// harnesses): blocks until the lock is free and returns the guard plus
    /// the virtual grant time `max(now, previous release) + rpc`.
    pub fn lock_raw(&self, now: SimTime) -> (DLockRawGuard<'_>, SimTime) {
        let st = self.state.lock();
        let grant = st.free_at.max(now) + self.rpc_ns;
        (DLockRawGuard { guard: Some(st) }, grant)
    }

    /// Non-blocking [`lock_raw`](Self::lock_raw); `None` if held.
    pub fn try_lock_raw(&self, now: SimTime) -> Option<(DLockRawGuard<'_>, SimTime)> {
        let st = self.state.try_lock()?;
        let grant = st.free_at.max(now) + self.rpc_ns;
        Some((DLockRawGuard { guard: Some(st) }, grant))
    }

    /// Number of times this lock has been acquired.
    pub fn acquisitions(&self) -> u64 {
        self.state.lock().acquisitions
    }
}

impl Drop for DLockGuard<'_> {
    fn drop(&mut self) {
        if let Some(raw) = self.raw.take() {
            raw.release(self.proc.now());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::Cluster;
    use crate::topology::ClusterSpec;

    #[test]
    fn critical_sections_serialize_in_virtual_time() {
        let cluster = Cluster::new(ClusterSpec::new(1, 4));
        let lock = DLock::with_rpc_ns(100);
        let l2 = lock.clone();
        let (times, _) = cluster.run(move |p| {
            let g = l2.lock(p);
            // One millisecond of virtual work inside the critical section.
            p.advance(1_000_000);
            drop(g);
            p.now()
        });
        let mut sorted = times.clone();
        sorted.sort();
        // The k-th process to get the lock finishes at >= k * (1 ms + rpc).
        for (k, t) in sorted.iter().enumerate() {
            assert!(*t >= (k as u64 + 1) * 1_000_100, "holder {k} finished at {t}, too early");
        }
        assert_eq!(lock.acquisitions(), 4);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let cluster = Cluster::new(ClusterSpec::new(1, 1));
        let lock = DLock::new();
        let l2 = lock.clone();
        let (outs, _) = cluster.run(move |p| {
            let _g = l2.lock(p);
            l2.try_lock(p).is_none()
        });
        assert!(outs[0], "try_lock must fail while the lock is held");
    }
}
