//! Distributed locks in virtual time.
//!
//! MegaMmap leaves coarse coherence to "synchronization points such as
//! barriers and locks (similar to any MPI or PGAS program)". [`DLock`] is
//! that lock: mutual exclusion is real (a held flag guarded by a
//! `parking_lot` mutex + condvar serializes the simulated processes) and the
//! *waiting time* is charged in virtual time — an acquirer resumes no
//! earlier than the previous holder's virtual release time plus a network
//! round trip.
//!
//! # Leases and crashed holders
//!
//! A real distributed lock must survive its holder dying mid-section; the
//! classic remedy is a lease. A lock built by [`DLock::with_lease`] grants
//! for at most `lease_ns` of virtual time: an acquirer whose `now` has
//! passed the current holder's `granted_at + lease_ns` *breaks the lease* —
//! it reclaims the lock, and the stale holder's eventual release (if it was
//! merely slow, not dead) is ignored via an epoch check, exactly like a
//! fencing token. Exclusion is therefore guaranteed only for critical
//! sections that fit inside the lease — the standard lease contract.
//!
//! Lease reclaim happens on *acquire attempts* (callers retry with their
//! clocks advancing); a waiter already parked on the condvar is woken only
//! by a genuine release, because a crashed holder never notifies.

use std::sync::Arc;

use megammap_sim::SimTime;
use megammap_telemetry::{Counter, Telemetry};
use parking_lot::{Condvar, Mutex};

use crate::proc::Proc;

/// Contention observables for one named [`DLock`] (mm-scope): grants and
/// the *virtual* wait each grant paid for the previous holder's critical
/// section. Deterministic whenever the grant order is deterministic — the
/// wait is `free_at - now` in virtual time, not wall-clock parking.
#[derive(Debug)]
struct DLockObs {
    acquisitions: Counter,
    wait_model_ns: Counter,
}

#[derive(Debug, Default)]
struct LockState {
    /// Whether the lock is logically held.
    held: bool,
    /// Fencing token: bumped on every grant; a release from a stale epoch
    /// (its lease was broken) cannot unlock the current holder.
    epoch: u64,
    /// Virtual grant time of the current holder (valid while `held`).
    granted_at: SimTime,
    /// Virtual time at which the previous holder released the lock.
    free_at: SimTime,
    /// Total acquisitions (diagnostics).
    acquisitions: u64,
    /// Leases broken because a holder out-lived its lease (diagnostics).
    lease_breaks: u64,
}

#[derive(Debug, Default)]
struct LockShared {
    state: Mutex<LockState>,
    cv: Condvar,
}

/// A distributed lock shared by simulated processes.
#[derive(Debug, Clone, Default)]
pub struct DLock {
    shared: Arc<LockShared>,
    /// Cost of the acquire/release message exchange, ns.
    rpc_ns: u64,
    /// Virtual-time lease; 0 = no lease (grants never expire).
    lease_ns: u64,
    /// Optional contention observables (`dlock.*{lock=<name>}`).
    obs: Option<Arc<DLockObs>>,
}

/// RAII guard: releases the lock (and stamps the virtual release time) on
/// drop.
pub struct DLockGuard<'a> {
    raw: Option<DLockRawGuard<'a>>,
    proc: &'a Proc,
}

/// Proc-free guard returned by [`DLock::lock_raw`]: the caller supplies
/// virtual times explicitly. Used by model checks (which have no
/// [`Proc`]) and by [`DLockGuard`] internally.
pub struct DLockRawGuard<'a> {
    shared: Option<&'a LockShared>,
    epoch: u64,
}

impl DLockRawGuard<'_> {
    /// Release the lock, stamping `now` as the virtual release time. If the
    /// guard's lease was broken in the meantime, the release is a fencing
    /// no-op (the acquisition is still counted).
    pub fn release(mut self, now: SimTime) {
        if let Some(sh) = self.shared.take() {
            let mut st = sh.state.lock();
            st.acquisitions += 1;
            if st.held && st.epoch == self.epoch {
                st.held = false;
                st.free_at = now;
                sh.cv.notify_all();
            }
        }
    }
}

impl Drop for DLockRawGuard<'_> {
    fn drop(&mut self) {
        // Dropped without an explicit release (e.g. unwinding): count the
        // acquisition and free the lock, but leave `free_at` at the
        // previous holder's stamp.
        if let Some(sh) = self.shared.take() {
            let mut st = sh.state.lock();
            st.acquisitions += 1;
            if st.held && st.epoch == self.epoch {
                st.held = false;
                sh.cv.notify_all();
            }
        }
    }
}

impl DLock {
    /// Create a lock whose acquire costs one RDMA round trip (~5 µs).
    pub fn new() -> Self {
        Self { shared: Arc::default(), rpc_ns: 5_000, lease_ns: 0, obs: None }
    }

    /// Create a lock with a custom RPC cost.
    pub fn with_rpc_ns(rpc_ns: u64) -> Self {
        Self { shared: Arc::default(), rpc_ns, lease_ns: 0, obs: None }
    }

    /// Create a leased lock: a holder that fails to release within
    /// `lease_ns` of virtual time can be evicted by later acquirers (see
    /// the module docs on the fencing contract).
    pub fn with_lease(rpc_ns: u64, lease_ns: u64) -> Self {
        debug_assert!(lease_ns > 0, "a zero lease would expire instantly");
        Self { shared: Arc::default(), rpc_ns, lease_ns, obs: None }
    }

    /// Attach contention observables: every grant increments
    /// `dlock.acquisitions{lock=name}` and adds the virtual wait the
    /// grantee paid to `dlock.wait_model_ns{lock=name}`. Call once at
    /// construction (the observables ride along with clones).
    pub fn observed(mut self, telemetry: &Telemetry, name: &str) -> Self {
        self.obs = Some(Arc::new(DLockObs {
            acquisitions: telemetry.counter("dlock", "acquisitions", &[("lock", name)]),
            wait_model_ns: telemetry.counter("dlock", "wait_model_ns", &[("lock", name)]),
        }));
        self
    }

    /// Acquire the lock on behalf of `p`. Blocks (in real time) until the
    /// lock is free, then advances `p`'s clock to
    /// `max(now, previous release) + rpc`.
    pub fn lock<'a>(&'a self, p: &'a Proc) -> DLockGuard<'a> {
        let (raw, grant) = self.lock_raw(p.now());
        p.advance_to(grant);
        DLockGuard { raw: Some(raw), proc: p }
    }

    /// Try to acquire without blocking; `None` if held (and, for leased
    /// locks, not yet expired).
    pub fn try_lock<'a>(&'a self, p: &'a Proc) -> Option<DLockGuard<'a>> {
        let (raw, grant) = self.try_lock_raw(p.now())?;
        p.advance_to(grant);
        Some(DLockGuard { raw: Some(raw), proc: p })
    }

    /// Grant the lock to the caller. Must hold the state mutex.
    fn grant(&self, st: &mut LockState, now: SimTime) -> (u64, SimTime) {
        let grant = st.free_at.max(now) + self.rpc_ns;
        if let Some(obs) = &self.obs {
            obs.acquisitions.inc();
            obs.wait_model_ns.add(st.free_at.saturating_sub(now));
        }
        st.held = true;
        st.epoch += 1;
        st.granted_at = grant;
        (st.epoch, grant)
    }

    /// If the current holder's lease expired by `now`, evict it. Must hold
    /// the state mutex; returns whether a lease was broken.
    fn try_break_lease(&self, st: &mut LockState, now: SimTime) -> bool {
        let expired =
            st.held && self.lease_ns > 0 && now >= st.granted_at.saturating_add(self.lease_ns);
        if expired {
            st.held = false;
            st.free_at = st.free_at.max(st.granted_at + self.lease_ns);
            st.lease_breaks += 1;
        }
        expired
    }

    /// Lower-level acquire for callers without a [`Proc`] (model checks,
    /// harnesses): blocks until the lock is free and returns the guard plus
    /// the virtual grant time `max(now, previous release) + rpc`. On a
    /// leased lock, a holder whose lease deadline is `<= now` is evicted
    /// instead of waited for.
    pub fn lock_raw(&self, now: SimTime) -> (DLockRawGuard<'_>, SimTime) {
        let mut st = self.shared.state.lock();
        while st.held && !self.try_break_lease(&mut st, now) {
            self.shared.cv.wait(&mut st);
        }
        let (epoch, grant) = self.grant(&mut st, now);
        (DLockRawGuard { shared: Some(&self.shared), epoch }, grant)
    }

    /// Non-blocking [`lock_raw`](Self::lock_raw); `None` if held (and not
    /// lease-expired).
    pub fn try_lock_raw(&self, now: SimTime) -> Option<(DLockRawGuard<'_>, SimTime)> {
        let mut st = self.shared.state.lock();
        if st.held && !self.try_break_lease(&mut st, now) {
            return None;
        }
        let (epoch, grant) = self.grant(&mut st, now);
        Some((DLockRawGuard { shared: Some(&self.shared), epoch }, grant))
    }

    /// Number of times this lock has been acquired.
    pub fn acquisitions(&self) -> u64 {
        self.shared.state.lock().acquisitions
    }

    /// Number of leases broken (holder presumed crashed and evicted).
    pub fn lease_breaks(&self) -> u64 {
        self.shared.state.lock().lease_breaks
    }
}

impl Drop for DLockGuard<'_> {
    fn drop(&mut self) {
        if let Some(raw) = self.raw.take() {
            raw.release(self.proc.now());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::Cluster;
    use crate::topology::ClusterSpec;

    #[test]
    fn critical_sections_serialize_in_virtual_time() {
        let cluster = Cluster::new(ClusterSpec::new(1, 4));
        let lock = DLock::with_rpc_ns(100);
        let l2 = lock.clone();
        let (times, _) = cluster.run(move |p| {
            let g = l2.lock(p);
            // One millisecond of virtual work inside the critical section.
            p.advance(1_000_000);
            drop(g);
            p.now()
        });
        let mut sorted = times.clone();
        sorted.sort();
        // The k-th process to get the lock finishes at >= k * (1 ms + rpc).
        for (k, t) in sorted.iter().enumerate() {
            assert!(*t >= (k as u64 + 1) * 1_000_100, "holder {k} finished at {t}, too early");
        }
        assert_eq!(lock.acquisitions(), 4);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let cluster = Cluster::new(ClusterSpec::new(1, 1));
        let lock = DLock::new();
        let l2 = lock.clone();
        let (outs, _) = cluster.run(move |p| {
            let _g = l2.lock(p);
            l2.try_lock(p).is_none()
        });
        assert!(outs[0], "try_lock must fail while the lock is held");
    }

    #[test]
    fn lease_expiry_reclaims_crashed_holder() {
        const RPC: u64 = 100;
        const LEASE: u64 = 10_000;
        let lock = DLock::with_lease(RPC, LEASE);
        let (g, grant) = lock.lock_raw(0);
        assert_eq!(grant, RPC);
        // The holder crashes: its guard is leaked and never releases.
        std::mem::forget(g);
        // Before the lease deadline the lock stays held.
        assert!(lock.try_lock_raw(grant + LEASE - 1).is_none());
        assert_eq!(lock.lease_breaks(), 0);
        // At the deadline an acquirer breaks the lease and takes over; the
        // virtual handover time is the deadline itself plus the round trip.
        let (g2, grant2) = lock.lock_raw(grant + LEASE);
        assert_eq!(grant2, grant + LEASE + RPC);
        assert_eq!(lock.lease_breaks(), 1);
        g2.release(grant2 + 500);
        // Only the live holder's acquisition was counted (the crashed one
        // never released or dropped its guard).
        assert_eq!(lock.acquisitions(), 1);
    }

    #[test]
    fn stale_release_after_lease_break_is_ignored() {
        const RPC: u64 = 100;
        const LEASE: u64 = 1_000;
        let lock = DLock::with_lease(RPC, LEASE);
        let (g1, grant1) = lock.lock_raw(0);
        // A slow (not dead) holder out-lives its lease; a second acquirer
        // evicts it.
        let (g2, grant2) = lock.lock_raw(grant1 + LEASE);
        assert_eq!(grant2, grant1 + LEASE + RPC);
        // The evicted holder's late release is fenced off: it must not
        // unlock the new holder's critical section (checked strictly before
        // the new holder's own lease deadline).
        g1.release(grant2 + 100);
        assert!(lock.try_lock_raw(grant2 + 100).is_none(), "stale release must not unlock");
        // The rightful holder's release works normally.
        let end = grant2 + 500;
        g2.release(end);
        let (g3, grant3) = lock.try_lock_raw(end).expect("lock free after real release");
        assert_eq!(grant3, end + RPC);
        drop(g3);
        assert_eq!(lock.lease_breaks(), 1);
        assert_eq!(lock.acquisitions(), 3);
    }

    #[test]
    fn observed_lock_records_grants_and_virtual_waits() {
        let tel = Telemetry::new();
        let lock = DLock::with_rpc_ns(1_000).observed(&tel, "leader");
        let (g1, t1) = lock.lock_raw(0);
        assert_eq!(t1, 1_000);
        g1.release(t1 + 500); // free_at = 1_500
        let (_g2, _t2) = lock.lock_raw(200); // arrived 1_300 ns before the release
        let snap = tel.snapshot();
        assert_eq!(snap.counter("dlock", "acquisitions", &[("lock", "leader")]), Some(2));
        assert_eq!(snap.counter("dlock", "wait_model_ns", &[("lock", "leader")]), Some(1_300));
    }

    #[test]
    fn unleased_locks_never_expire() {
        let lock = DLock::with_rpc_ns(100);
        let (g, grant) = lock.lock_raw(0);
        // Arbitrarily far in the future, the holder still owns the lock.
        assert!(lock.try_lock_raw(u64::MAX / 2).is_none());
        g.release(grant + 10);
        assert_eq!(lock.lease_breaks(), 0);
    }
}
