//! N-party rendezvous: the building block for barriers and collectives.
//!
//! All members of a communicator call [`Rendezvous::exchange`] with their
//! member index, their current virtual clock, and a contribution. The last
//! arriver combines all contributions (in member order, so floating-point
//! reductions are deterministic) and publishes the result together with the
//! maximum member clock; everyone leaves with both.
//!
//! This is how virtual time composes at synchronization points: every member
//! resumes at `max(member clocks) + collective cost`, the conservative rule
//! for barrier semantics.

use std::sync::Arc;

use megammap_sim::SimTime;
use parking_lot::{Condvar, Mutex};

/// Outcome of an exchange: the combined value plus the clock agreement.
pub struct Exchanged<R> {
    /// The combined result, shared by all members.
    pub result: Arc<R>,
    /// Maximum virtual clock among members at entry.
    pub max_clock: SimTime,
}

impl<R> Clone for Exchanged<R> {
    fn clone(&self) -> Self {
        Self { result: self.result.clone(), max_clock: self.max_clock }
    }
}

struct State<T, R> {
    generation: u64,
    arrived: usize,
    max_clock: SimTime,
    slots: Vec<Option<T>>,
    published: Option<Exchanged<R>>,
}

/// A reusable rendezvous for `n` members exchanging `T`s for a combined `R`.
pub struct Rendezvous<T, R> {
    n: usize,
    state: Mutex<State<T, R>>,
    cv: Condvar,
}

impl<T: Send, R: Send + Sync> Rendezvous<T, R> {
    /// Create a rendezvous for `n` members.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "rendezvous needs at least one member");
        Self {
            n,
            state: Mutex::new(State {
                generation: 0,
                arrived: 0,
                max_clock: 0,
                slots: (0..n).map(|_| None).collect(),
                published: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Member count.
    pub fn members(&self) -> usize {
        self.n
    }

    /// Exchange: deposit `value` as member `idx` at virtual time `clock`;
    /// block until all `n` members arrive; return the combined result.
    ///
    /// `combine` runs exactly once per round, in the last arriver, over the
    /// contributions **in member order**. All members must pass an
    /// equivalent `combine` (SPMD discipline, like MPI op arguments).
    pub fn exchange<F>(&self, idx: usize, clock: SimTime, value: T, combine: F) -> Exchanged<R>
    where
        F: FnOnce(Vec<T>) -> R,
    {
        assert!(idx < self.n, "member index {idx} out of range {}", self.n);
        let mut st = self.state.lock();
        let my_gen = st.generation;
        assert!(st.slots[idx].is_none(), "member {idx} exchanged twice in one round");
        st.slots[idx] = Some(value);
        st.arrived += 1;
        st.max_clock = st.max_clock.max(clock);
        if st.arrived == self.n {
            // Last arriver: combine in member order and publish.
            let vals: Vec<T> =
                st.slots.iter_mut().map(|s| s.take().expect("all slots filled")).collect();
            let result = Exchanged { result: Arc::new(combine(vals)), max_clock: st.max_clock };
            st.published = Some(result.clone());
            st.generation += 1;
            st.arrived = 0;
            st.max_clock = 0;
            self.cv.notify_all();
            result
        } else {
            while st.generation == my_gen {
                self.cv.wait(&mut st);
            }
            st.published.as_ref().expect("published by last arriver").clone()
        }
    }
}

/// Highest-random-weight (rendezvous) hashing: deterministically assign
/// `key` to one of `candidates` such that removing a candidate only moves
/// the keys that were assigned *to it* — the minimal-movement property the
/// runtime relies on for page re-homing when a node crashes.
///
/// Every (key, candidate) pair gets a pseudo-random weight from the
/// SplitMix64 finalizer; the candidate with the highest weight wins. Ties
/// are impossible in practice (64-bit weights) but break toward the lower
/// candidate id for full determinism. Returns `None` iff `candidates` is
/// empty.
pub fn rendezvous_hash(key: u64, candidates: &[usize]) -> Option<usize> {
    let mut best: Option<(u64, usize)> = None;
    for &c in candidates {
        let w = megammap_sim::fault::mix64(key ^ (c as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f));
        let better = match best {
            None => true,
            Some((bw, bc)) => w > bw || (w == bw && c < bc),
        };
        if better {
            best = Some((w, c));
        }
    }
    best.map(|(_, c)| c)
}

#[cfg(test)]
mod proptests {
    use super::rendezvous_hash;
    use proptest::prelude::*;

    proptest! {
        /// Removing one node moves exactly the keys it owned (to survivors)
        /// and leaves every other key's assignment untouched.
        #[test]
        fn rehoming_moves_only_the_crashed_nodes_keys(
            keys in proptest::collection::vec(any::<u64>(), 1..200),
            nodes in 2usize..9,
            crashed in 0usize..9,
        ) {
            let crashed = crashed % nodes;
            let all: Vec<usize> = (0..nodes).collect();
            let survivors: Vec<usize> = all.iter().copied().filter(|&n| n != crashed).collect();
            for key in keys {
                let before = rendezvous_hash(key, &all).expect("nonempty");
                let after = rendezvous_hash(key, &survivors).expect("nonempty");
                if before == crashed {
                    prop_assert!(after != crashed, "key must leave the crashed node");
                } else {
                    prop_assert_eq!(after, before, "survivor-homed keys must not move");
                }
            }
        }

        /// The assignment is independent of candidate order (no positional
        /// bias), so any layer can pass its own view of the live set.
        #[test]
        fn order_independent(key in any::<u64>(), nodes in 1usize..9) {
            let fwd: Vec<usize> = (0..nodes).collect();
            let rev: Vec<usize> = (0..nodes).rev().collect();
            prop_assert_eq!(rendezvous_hash(key, &fwd), rendezvous_hash(key, &rev));
        }

        /// Keys spread across candidates (no degenerate constant mapping).
        #[test]
        fn spreads_load(seed in any::<u64>()) {
            let all: Vec<usize> = (0..4).collect();
            let mut counts = [0usize; 4];
            for i in 0..256u64 {
                let k = seed.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                counts[rendezvous_hash(k, &all).unwrap()] += 1;
            }
            for (n, &c) in counts.iter().enumerate() {
                prop_assert!(c > 16, "node {} starved: {:?}", n, counts);
            }
        }
    }

    #[test]
    fn empty_candidates_is_none() {
        assert_eq!(rendezvous_hash(42, &[]), None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_member_is_immediate() {
        let r: Rendezvous<u32, u32> = Rendezvous::new(1);
        let out = r.exchange(0, 42, 7, |v| v[0] * 2);
        assert_eq!(*out.result, 14);
        assert_eq!(out.max_clock, 42);
    }

    #[test]
    fn combines_in_member_order_and_takes_max_clock() {
        let r: Arc<Rendezvous<usize, Vec<usize>>> = Arc::new(Rendezvous::new(4));
        let mut handles = vec![];
        for i in 0..4 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                // Member i contributes i*10 with clock i*100.
                r.exchange(i, (i as u64) * 100, i * 10, |v| v)
            }));
        }
        for h in handles {
            let out = h.join().unwrap();
            assert_eq!(*out.result, vec![0, 10, 20, 30], "member order preserved");
            assert_eq!(out.max_clock, 300);
        }
    }

    #[test]
    fn reusable_across_generations() {
        let r: Arc<Rendezvous<u64, u64>> = Arc::new(Rendezvous::new(2));
        for round in 0..50u64 {
            let r1 = r.clone();
            let h = std::thread::spawn(move || r1.exchange(1, round, round, |v| v.iter().sum()));
            let a = r.exchange(0, round, round, |v| v.iter().sum());
            let b = h.join().unwrap();
            assert_eq!(*a.result, 2 * round);
            assert_eq!(*b.result, 2 * round);
        }
    }

    #[test]
    #[should_panic(expected = "exchanged twice")]
    fn double_exchange_in_round_panics() {
        let r: Rendezvous<u32, u32> = Rendezvous::new(2);
        // First deposit parks the slot; a second deposit by the same member
        // in the same round is a protocol violation.
        let state = &r.state;
        {
            let mut st = state.lock();
            st.slots[0] = Some(1);
            st.arrived = 1;
        }
        r.exchange(0, 0, 2, |v| v[0]);
    }
}
