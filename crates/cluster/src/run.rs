//! Spawning SPMD jobs and collecting run reports.

use std::sync::Arc;

use megammap_sim::NetworkModel;
use megammap_telemetry::Telemetry;

use crate::comm::Comm;
use crate::proc::{ClusterState, Proc};
use crate::topology::ClusterSpec;

/// Aggregate statistics of one SPMD run — the rows the paper's `pymonitor`
/// + Jarvis pipeline would write to `stats_dict.csv`.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Virtual makespan: the maximum clock over all processes at exit.
    pub makespan_ns: u64,
    /// Per-rank virtual finish times.
    pub rank_times: Vec<u64>,
    /// Peak baseline DRAM per node (bytes).
    pub node_peak_mem: Vec<u64>,
    /// Total bytes that crossed the inter-node network.
    pub net_bytes: u64,
}

impl RunReport {
    /// Makespan in seconds.
    pub fn makespan_secs(&self) -> f64 {
        megammap_sim::clock::ns_to_secs(self.makespan_ns)
    }

    /// Peak DRAM over all nodes (bytes).
    pub fn peak_mem(&self) -> u64 {
        self.node_peak_mem.iter().copied().max().unwrap_or(0)
    }
}

/// A simulated cluster ready to run SPMD jobs.
pub struct Cluster {
    state: Arc<ClusterState>,
}

impl Cluster {
    /// Build a cluster from a spec.
    pub fn new(spec: ClusterSpec) -> Self {
        Self { state: Arc::new(ClusterState::new(spec)) }
    }

    /// The cluster spec.
    pub fn spec(&self) -> &ClusterSpec {
        &self.state.spec
    }

    /// The network model (shared with higher layers, e.g. the DSM runtime).
    pub fn net(&self) -> &NetworkModel {
        &self.state.net
    }

    /// The cluster-wide telemetry registry; the network model reports into
    /// it, and `Runtime::new` adopts it so the whole DSM stack shares one
    /// sink.
    pub fn telemetry(&self) -> &Telemetry {
        &self.state.telemetry
    }

    /// Run `f` as one process per rank; returns per-rank results (in rank
    /// order) plus the [`RunReport`].
    ///
    /// Each process is an OS thread. Panics in any process propagate.
    pub fn run<F, R>(&self, f: F) -> (Vec<R>, RunReport)
    where
        F: Fn(&Proc) -> R + Send + Sync,
        R: Send,
    {
        let n = self.state.spec.nprocs();
        let world = Comm::world(&self.state);
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        crossbeam::thread::scope(|s| {
            let mut handles = Vec::with_capacity(n);
            for (rank, slot) in results.iter_mut().enumerate() {
                let state = self.state.clone();
                let world = world.clone();
                let f = &f;
                handles.push(s.spawn(move |_| {
                    let p = Proc::new(state, rank, world);
                    *slot = Some(f(&p));
                }));
            }
            for h in handles {
                h.join().expect("simulated process panicked");
            }
        })
        .expect("cluster scope");
        let results: Vec<R> =
            results.into_iter().map(|r| r.expect("every rank produced a result")).collect();
        let rank_times: Vec<u64> = self.state.clocks.iter().map(|c| c.now()).collect();
        let report = RunReport {
            makespan_ns: rank_times.iter().copied().max().unwrap_or(0),
            rank_times,
            node_peak_mem: self.state.node_mem.iter().map(|m| m.peak()).collect(),
            net_bytes: self.state.net.total_bytes(),
        };
        (results, report)
    }

    /// Run `f` once on a single-process cluster, allowing a mutably
    /// capturing closure (useful for benchmark harnesses that drive a
    /// `Bencher` from inside the simulated process).
    ///
    /// Panics if the cluster has more than one process.
    pub fn run_once<F, R>(&self, f: F) -> (R, RunReport)
    where
        F: FnOnce(&Proc) -> R + Send,
        R: Send,
    {
        assert_eq!(self.state.spec.nprocs(), 1, "run_once requires a single-process cluster");
        let world = Comm::world(&self.state);
        let mut out: Option<R> = None;
        crossbeam::thread::scope(|s| {
            let state = self.state.clone();
            let slot = &mut out;
            s.spawn(move |_| {
                let p = Proc::new(state, 0, world);
                *slot = Some(f(&p));
            })
            .join()
            .expect("simulated process panicked");
        })
        .expect("cluster scope");
        let rank_times: Vec<u64> = self.state.clocks.iter().map(|c| c.now()).collect();
        let report = RunReport {
            makespan_ns: rank_times.iter().copied().max().unwrap_or(0),
            rank_times,
            node_peak_mem: self.state.node_mem.iter().map(|m| m.peak()).collect(),
            net_bytes: self.state.net.total_bytes(),
        };
        (out.expect("closure ran"), report)
    }

    /// Reset clocks, ledgers, network and telemetry between repetitions.
    pub fn reset(&self) {
        for c in &self.state.clocks {
            c.reset();
        }
        for m in &self.state.node_mem {
            m.reset();
        }
        self.state.net.reset();
        self.state.telemetry.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_makespan_and_peaks() {
        let cluster = Cluster::new(ClusterSpec::new(2, 1).dram_per_node(10_000));
        let (_, report) = cluster.run(|p| {
            let _g = p.alloc(1000 * (p.rank() as u64 + 1)).unwrap();
            p.advance(500 + p.rank() as u64);
        });
        assert_eq!(report.makespan_ns, 501);
        assert_eq!(report.rank_times, vec![500, 501]);
        assert_eq!(report.node_peak_mem, vec![1000, 2000]);
        assert_eq!(report.peak_mem(), 2000);
    }

    #[test]
    fn reset_clears_state() {
        let cluster = Cluster::new(ClusterSpec::new(1, 2));
        let (_, r1) = cluster.run(|p| p.advance(100));
        assert_eq!(r1.makespan_ns, 100);
        cluster.reset();
        let (_, r2) = cluster.run(|p| p.advance(50));
        assert_eq!(r2.makespan_ns, 50, "clocks must restart from zero");
    }

    #[test]
    fn results_in_rank_order() {
        let cluster = Cluster::new(ClusterSpec::new(2, 3));
        let (out, _) = cluster.run(|p| p.rank() * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10]);
    }
}
