//! Cluster shape: nodes, processes per node, hardware profiles.

use megammap_sim::{CpuModel, LinkProfile, GIB};

/// Describes the simulated cluster an experiment runs on.
///
/// Defaults mirror one compute rack of the paper's testbed at 1/1000 scale:
/// 48 MB DRAM per node standing in for 48 GB, RDMA over 40 GbE, Xeon-class
/// cores.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// SPMD processes placed on each node (the paper runs 48 per node; the
    /// scaled experiments default to fewer so thread counts stay sane).
    pub procs_per_node: usize,
    /// Inter-node transport profile.
    pub link: LinkProfile,
    /// Per-process compute model.
    pub cpu: CpuModel,
    /// DRAM capacity per node in bytes, enforced on baseline allocations.
    pub dram_per_node: u64,
}

impl ClusterSpec {
    /// A small default cluster: 4 nodes × 4 procs, RDMA, 48 MB DRAM/node.
    pub fn new(nodes: usize, procs_per_node: usize) -> Self {
        Self {
            nodes,
            procs_per_node,
            link: LinkProfile::rdma_40g(),
            cpu: CpuModel::native(),
            dram_per_node: 48 * 1024 * 1024,
        }
    }

    /// Override the DRAM capacity per node.
    pub fn dram_per_node(mut self, bytes: u64) -> Self {
        self.dram_per_node = bytes;
        self
    }

    /// Override the network link profile.
    pub fn link(mut self, link: LinkProfile) -> Self {
        self.link = link;
        self
    }

    /// Override the CPU model.
    pub fn cpu(mut self, cpu: CpuModel) -> Self {
        self.cpu = cpu;
        self
    }

    /// A full-scale analog of the paper's testbed node (used in docs/tests):
    /// 48 GB DRAM.
    pub fn paper_rack(nodes: usize, procs_per_node: usize) -> Self {
        Self::new(nodes, procs_per_node).dram_per_node(48 * GIB)
    }

    /// Total process count.
    pub fn nprocs(&self) -> usize {
        self.nodes * self.procs_per_node
    }

    /// Node that hosts `rank` (block distribution, like `mpirun -ppn`).
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.procs_per_node
    }

    /// Ranks hosted on `node`.
    pub fn ranks_on(&self, node: usize) -> std::ops::Range<usize> {
        node * self.procs_per_node..(node + 1) * self.procs_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_rank_mapping() {
        let s = ClusterSpec::new(4, 3);
        assert_eq!(s.nprocs(), 12);
        assert_eq!(s.node_of(0), 0);
        assert_eq!(s.node_of(2), 0);
        assert_eq!(s.node_of(3), 1);
        assert_eq!(s.node_of(11), 3);
        assert_eq!(s.ranks_on(1), 3..6);
    }

    #[test]
    fn builders_override() {
        let s = ClusterSpec::new(2, 2)
            .dram_per_node(123)
            .link(LinkProfile::tcp_10g())
            .cpu(CpuModel::jvm());
        assert_eq!(s.dram_per_node, 123);
        assert_eq!(s.link, LinkProfile::tcp_10g());
        assert!((s.cpu.slowdown - 1.8).abs() < 1e-9);
    }
}
