//! The per-process context handed to SPMD workload code.

use std::fmt;
use std::sync::Arc;

use megammap_sim::clock::Clock;
use megammap_sim::{CpuModel, MemoryLedger, NetworkModel, SimTime};
use megammap_telemetry::Telemetry;

use crate::comm::Comm;
use crate::mailbox::{Envelope, Mailbox};
use crate::topology::ClusterSpec;

/// Shared, immutable-after-spawn cluster state.
pub(crate) struct ClusterState {
    pub(crate) spec: ClusterSpec,
    pub(crate) net: NetworkModel,
    /// Per-node DRAM ledgers used by baseline (non-DSM) allocations.
    pub(crate) node_mem: Vec<MemoryLedger>,
    pub(crate) mailboxes: Vec<Mailbox>,
    pub(crate) clocks: Vec<Arc<Clock>>,
    /// The cluster-wide metrics registry + event ring; shared with the
    /// network model and (via `Runtime::new`) the whole DSM stack.
    pub(crate) telemetry: Telemetry,
}

impl ClusterState {
    pub(crate) fn new(spec: ClusterSpec) -> Self {
        let n = spec.nprocs();
        let net = NetworkModel::new(spec.nodes, spec.link);
        let telemetry = Telemetry::new();
        net.attach_telemetry(&telemetry);
        Self {
            net,
            node_mem: (0..spec.nodes).map(|_| MemoryLedger::new(spec.dram_per_node)).collect(),
            mailboxes: (0..n).map(|_| Mailbox::new()).collect(),
            clocks: (0..n).map(|_| Arc::new(Clock::new())).collect(),
            spec,
            telemetry,
        }
    }
}

/// Error raised when a baseline allocation exceeds a node's DRAM.
///
/// This is the simulation's stand-in for the Linux OOM killer: "the default
/// behavior of Linux is to terminate programs overutilizing memory" (Fig. 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OomError {
    /// Node that ran out of memory.
    pub node: usize,
    /// Bytes the allocation requested.
    pub requested: u64,
    /// Bytes that were available on the node.
    pub available: u64,
}

impl fmt::Display for OomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulated OOM kill on node {}: requested {} B, {} B available",
            self.node, self.requested, self.available
        )
    }
}

impl std::error::Error for OomError {}

/// RAII guard for a baseline DRAM allocation; frees the ledger on drop.
pub struct MemGuard {
    state: Arc<ClusterState>,
    node: usize,
    bytes: u64,
}

impl MemGuard {
    /// Size of this allocation.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Grow the allocation in place.
    pub fn grow(&mut self, extra: u64) -> Result<(), OomError> {
        let ledger = &self.state.node_mem[self.node];
        ledger.alloc(extra).map_err(|e| OomError {
            node: self.node,
            requested: extra,
            available: e.available,
        })?;
        self.bytes += extra;
        Ok(())
    }
}

impl Drop for MemGuard {
    fn drop(&mut self) {
        self.state.node_mem[self.node].free(self.bytes);
    }
}

/// The context of one simulated SPMD process.
///
/// A `Proc` is created by [`Cluster::run`](crate::run::Cluster::run) and
/// passed to the workload closure; it owns the process's virtual clock and
/// exposes communication, compute charging, and memory allocation.
pub struct Proc {
    pub(crate) state: Arc<ClusterState>,
    pub(crate) rank: usize,
    pub(crate) world: Comm,
}

impl Proc {
    pub(crate) fn new(state: Arc<ClusterState>, rank: usize, world: Comm) -> Self {
        Self { state, rank, world }
    }

    /// This process's rank in the world communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of processes.
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.state.spec.nprocs()
    }

    /// The node hosting this process.
    #[inline]
    pub fn node(&self) -> usize {
        self.state.spec.node_of(self.rank)
    }

    /// The world communicator (all ranks).
    pub fn world(&self) -> Comm {
        self.world.clone()
    }

    /// The cluster specification.
    pub fn spec(&self) -> &ClusterSpec {
        &self.state.spec
    }

    /// The network model (shared with the DSM runtime).
    pub fn net(&self) -> &NetworkModel {
        &self.state.net
    }

    /// The cluster-wide telemetry registry.
    pub fn telemetry(&self) -> &Telemetry {
        &self.state.telemetry
    }

    /// This process's virtual clock.
    pub fn clock(&self) -> &Arc<Clock> {
        &self.state.clocks[self.rank]
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.clock().now()
    }

    /// Advance this process's clock by `ns`.
    #[inline]
    pub fn advance(&self, ns: u64) {
        self.clock().advance(ns);
    }

    /// Wait (in virtual time) until `t`.
    #[inline]
    pub fn advance_to(&self, t: SimTime) {
        self.clock().advance_to(t);
    }

    /// The per-process CPU model.
    pub fn cpu(&self) -> CpuModel {
        self.state.spec.cpu
    }

    /// Charge `flops` floating-point operations of compute.
    #[inline]
    pub fn compute_flops(&self, flops: u64) {
        self.advance(self.cpu().flops_ns(flops));
    }

    /// Charge a streaming pass over `bytes` of memory.
    #[inline]
    pub fn stream_bytes(&self, bytes: u64) {
        self.advance(self.cpu().mem_ns(bytes));
    }

    /// Charge a memcpy of `bytes`.
    #[inline]
    pub fn memcpy(&self, bytes: u64) {
        self.advance(self.cpu().memcpy_ns(bytes));
    }

    // ---- point-to-point messaging -------------------------------------

    /// Send `value` (logically `bytes` long) to `dst` with `tag`. The send
    /// is asynchronous: the sender is only charged the injection overhead;
    /// the transfer occupies NIC timelines and the arrival time rides along
    /// in the envelope.
    pub fn send<T: Send + 'static>(&self, dst: usize, tag: u64, value: T, bytes: u64) {
        let now = self.now();
        let src_node = self.node();
        let dst_node = self.state.spec.node_of(dst);
        let arrival = self.state.net.transfer(now, src_node, dst_node, bytes);
        // Sender-side injection cost: a memcpy into the transport.
        self.advance(self.cpu().memcpy_ns(bytes.min(64 * 1024)));
        self.state.mailboxes[dst].deliver(Envelope {
            src: self.rank,
            tag,
            arrival,
            bytes,
            payload: Box::new(value),
        });
    }

    /// Blocking receive of a `T` from `src` with `tag` (wildcards in
    /// [`crate::mailbox`]). Panics if the matched payload has the wrong type
    /// — a protocol error in SPMD code.
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: u64) -> T {
        let env = self.state.mailboxes[self.rank].recv_match(src, tag);
        self.advance_to(env.arrival);
        *env.payload
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("recv type mismatch from rank {} tag {}", src, tag))
    }

    /// Receive returning the sender too (for `ANY_SOURCE` receives).
    pub fn recv_any<T: Send + 'static>(&self, tag: u64) -> (usize, T) {
        let env = self.state.mailboxes[self.rank].recv_match(crate::mailbox::ANY_SOURCE, tag);
        self.advance_to(env.arrival);
        let src = env.src;
        (src, *env.payload.downcast::<T>().expect("recv_any type mismatch"))
    }

    // ---- baseline memory accounting ------------------------------------

    /// Allocate `bytes` of node DRAM for baseline data structures; the
    /// allocation is charged against the node's ledger and returns an OOM
    /// error when the node's memory would be over-utilized.
    pub fn alloc(&self, bytes: u64) -> Result<MemGuard, OomError> {
        let node = self.node();
        self.state.node_mem[node].alloc(bytes).map_err(|e| OomError {
            node,
            requested: bytes,
            available: e.available,
        })?;
        Ok(MemGuard { state: self.state.clone(), node, bytes })
    }

    /// Peak DRAM observed on this process's node so far.
    pub fn node_peak_mem(&self) -> u64 {
        self.state.node_mem[self.node()].peak()
    }

    /// The DRAM ledger of this process's node.
    pub fn node_mem(&self) -> &MemoryLedger {
        &self.state.node_mem[self.node()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::Cluster;

    #[test]
    fn ranks_and_nodes_visible() {
        let cluster = Cluster::new(ClusterSpec::new(2, 2));
        let (ranks, _) = cluster.run(|p| (p.rank(), p.node(), p.nprocs()));
        assert_eq!(ranks, vec![(0, 0, 4), (1, 0, 4), (2, 1, 4), (3, 1, 4)]);
    }

    #[test]
    fn send_recv_moves_data_and_time() {
        let cluster = Cluster::new(ClusterSpec::new(2, 1));
        let (out, _) = cluster.run(|p| {
            if p.rank() == 0 {
                p.send(1, 0, vec![1u8, 2, 3], 3 * 1024 * 1024);
                0u64
            } else {
                let v: Vec<u8> = p.recv(0, 0);
                assert_eq!(v, vec![1, 2, 3]);
                p.now()
            }
        });
        // Receiver's clock advanced by the transfer time of 3 MiB over RDMA.
        assert!(out[1] > 500_000, "recv time was {}", out[1]);
    }

    #[test]
    fn compute_advances_clock() {
        let cluster = Cluster::new(ClusterSpec::new(1, 1));
        let (out, report) = cluster.run(|p| {
            p.compute_flops(2_000_000_000);
            p.now()
        });
        assert_eq!(out[0], megammap_sim::NS_PER_SEC);
        assert_eq!(report.makespan_ns, megammap_sim::NS_PER_SEC);
    }

    #[test]
    fn oom_fires_at_node_capacity() {
        let cluster = Cluster::new(ClusterSpec::new(1, 2).dram_per_node(1000));
        let (out, _) = cluster.run(|p| {
            // Both procs on node 0 share the ledger; together they exceed it.
            let g = p.alloc(400);
            p.world().barrier(p);
            let g2 = p.alloc(400);
            p.world().barrier(p);
            (g.is_ok(), g2.is_err())
        });
        // First allocations fit (800 <= 1000); second round cannot.
        assert!(out.iter().all(|&(a, _)| a));
        assert!(out.iter().any(|&(_, b)| b), "at least one proc must OOM");
    }

    #[test]
    fn memguard_frees_on_drop() {
        let cluster = Cluster::new(ClusterSpec::new(1, 1).dram_per_node(1000));
        let (out, report) = cluster.run(|p| {
            {
                let _g = p.alloc(800).unwrap();
                assert_eq!(p.node_mem().used(), 800);
            }
            p.node_mem().used()
        });
        assert_eq!(out[0], 0);
        assert_eq!(report.node_peak_mem[0], 800);
    }

    #[test]
    fn memguard_grow() {
        let cluster = Cluster::new(ClusterSpec::new(1, 1).dram_per_node(1000));
        let (out, _) = cluster.run(|p| {
            let mut g = p.alloc(100).unwrap();
            g.grow(200).unwrap();
            assert!(g.grow(10_000).is_err());
            g.bytes()
        });
        assert_eq!(out[0], 300);
    }
}
