//! Point-to-point message mailboxes.
//!
//! Each rank owns a [`Mailbox`]: an MPI-style matching queue. A sender
//! deposits an [`Envelope`] carrying a type-erased payload plus the virtual
//! arrival time computed by the network model; `recv(src, tag)` blocks (in
//! real time) until a matching envelope exists, then hands it over. The
//! receiver's clock is advanced to `max(now, arrival)` by the caller.

use std::any::Any;
use std::collections::VecDeque;

use megammap_sim::SimTime;
use megammap_telemetry::{lockorder, LockRank};
use parking_lot::{Condvar, Mutex};

/// Wildcard source rank (like `MPI_ANY_SOURCE`).
pub const ANY_SOURCE: usize = usize::MAX;
/// Wildcard tag (like `MPI_ANY_TAG`).
pub const ANY_TAG: u64 = u64::MAX;

/// A message in flight.
pub struct Envelope {
    /// Sending rank.
    pub src: usize,
    /// Application tag for matching.
    pub tag: u64,
    /// Virtual time at which the payload is fully received.
    pub arrival: SimTime,
    /// Size in bytes that was charged to the network.
    pub bytes: u64,
    /// The payload (really moved between threads).
    pub payload: Box<dyn Any + Send>,
}

/// An MPI-style matching receive queue for one rank.
#[derive(Default)]
pub struct Mailbox {
    queue: Mutex<VecDeque<Envelope>>,
    cv: Condvar,
}

impl Mailbox {
    /// Create an empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposit an envelope and wake matching receivers.
    pub fn deliver(&self, env: Envelope) {
        let mut q = self.queue.lock();
        let _lo = lockorder::acquired(LockRank::Mailbox);
        q.push_back(env);
        self.cv.notify_all();
    }

    /// Block until an envelope matching `(src, tag)` is available and remove
    /// it. Matching is FIFO among candidates, per MPI ordering semantics.
    pub fn recv_match(&self, src: usize, tag: u64) -> Envelope {
        let mut q = self.queue.lock();
        let _lo = lockorder::acquired(LockRank::Mailbox);
        loop {
            let found = q.iter().position(|e| {
                (src == ANY_SOURCE || e.src == src) && (tag == ANY_TAG || e.tag == tag)
            });
            if let Some(env) = found.and_then(|pos| q.remove(pos)) {
                return env;
            }
            self.cv.wait(&mut q);
        }
    }

    /// Non-blocking probe: does a matching envelope exist?
    pub fn probe(&self, src: usize, tag: u64) -> bool {
        let q = self.queue.lock();
        q.iter().any(|e| (src == ANY_SOURCE || e.src == src) && (tag == ANY_TAG || e.tag == tag))
    }

    /// Number of queued messages (diagnostics).
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// Whether the mailbox is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn env(src: usize, tag: u64, v: i32) -> Envelope {
        Envelope { src, tag, arrival: 0, bytes: 4, payload: Box::new(v) }
    }

    #[test]
    fn matches_by_src_and_tag() {
        let mb = Mailbox::new();
        mb.deliver(env(1, 7, 10));
        mb.deliver(env(2, 7, 20));
        mb.deliver(env(1, 8, 30));
        let e = mb.recv_match(2, 7);
        assert_eq!(*e.payload.downcast::<i32>().unwrap(), 20);
        let e = mb.recv_match(1, 8);
        assert_eq!(*e.payload.downcast::<i32>().unwrap(), 30);
        let e = mb.recv_match(1, 7);
        assert_eq!(*e.payload.downcast::<i32>().unwrap(), 10);
        assert!(mb.is_empty());
    }

    #[test]
    fn wildcards_match_fifo() {
        let mb = Mailbox::new();
        mb.deliver(env(3, 1, 1));
        mb.deliver(env(4, 2, 2));
        let e = mb.recv_match(ANY_SOURCE, ANY_TAG);
        assert_eq!(e.src, 3, "FIFO among candidates");
        assert!(mb.probe(4, ANY_TAG));
        assert!(!mb.probe(3, ANY_TAG));
    }

    #[test]
    fn recv_blocks_until_delivery() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = mb.clone();
        let h = std::thread::spawn(move || {
            let e = mb2.recv_match(0, 0);
            *e.payload.downcast::<i32>().unwrap()
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        mb.deliver(env(0, 0, 99));
        assert_eq!(h.join().unwrap(), 99);
    }
}
