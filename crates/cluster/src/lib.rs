//! # megammap-cluster — simulated cluster & MPI-like substrate
//!
//! The paper evaluates MegaMmap with up to 1536 MPI processes over 32 nodes.
//! This crate is the from-scratch substitute: a [`Cluster`] spawns SPMD
//! "processes" as OS threads, each owning a virtual [`Clock`]
//! (from `megammap-sim`) and a [`Proc`] context that provides:
//!
//! * **point-to-point messaging** — typed `send`/`recv` whose payloads really
//!   move between threads, with arrival times charged by the network model;
//! * **collectives** — `barrier`, `bcast`, `reduce`, `allreduce`, `allgather`,
//!   `gather`, `scatter` with MPICH-style tree/ring cost shapes;
//! * **communicators** — `Comm::split` for the recursive process partitioning
//!   that µDBSCAN and Random Forest perform;
//! * **distributed locks** — virtual-time queued mutual exclusion;
//! * **per-node DRAM ledgers** — baseline workloads allocate through these,
//!   which is how the MPI Gray-Scott "crashes due to memory overutilization"
//!   past L = 2688 in Fig. 6 while MegaMmap keeps running.
//!
//! Nothing here is MegaMmap-specific: the MPI-style baselines in
//! `megammap-workloads` are written directly against this API, exactly as the
//! paper's baselines are written against MPICH.
//!
//! [`Clock`]: megammap_sim::Clock

pub mod comm;
pub mod dlock;
pub mod mailbox;
pub mod proc;
pub mod rendezvous;
pub mod run;
pub mod topology;

pub use comm::Comm;
pub use dlock::DLock;
pub use proc::{MemGuard, OomError, Proc};
pub use rendezvous::rendezvous_hash;
pub use run::{Cluster, RunReport};
pub use topology::ClusterSpec;
