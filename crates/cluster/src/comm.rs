//! Communicators and collective operations.
//!
//! A [`Comm`] names a subset of world ranks and carries a type-erased
//! [`Rendezvous`] for its collectives. Collective costs follow MPICH-style
//! shapes (trees for barrier/bcast/reduce, rings for allgather), matching
//! the paper's note that MegaMmap's Collective hint uses "a tree-based
//! pattern ... similar to allgather operations in MPICH".

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::Arc;

use megammap_sim::CollectiveShape;
use megammap_telemetry::{EventKind, Stage};

use crate::proc::{ClusterState, Proc};
use crate::rendezvous::Rendezvous;

type AnyVal = Box<dyn Any + Send>;
type AnyRes = Box<dyn Any + Send + Sync>;

pub(crate) struct CommState {
    /// World ranks of members, in member-index order.
    ranks: Vec<usize>,
    rv: Rendezvous<AnyVal, AnyRes>,
}

/// Elementwise reduction operators for numeric collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
}

impl ReduceOp {
    fn fold_f64(self, acc: &mut [f64], v: &[f64]) {
        match self {
            ReduceOp::Sum => acc.iter_mut().zip(v).for_each(|(a, b)| *a += b),
            ReduceOp::Max => acc.iter_mut().zip(v).for_each(|(a, b)| *a = a.max(*b)),
            ReduceOp::Min => acc.iter_mut().zip(v).for_each(|(a, b)| *a = a.min(*b)),
        }
    }

    fn fold_u64(self, acc: &mut [u64], v: &[u64]) {
        match self {
            ReduceOp::Sum => acc.iter_mut().zip(v).for_each(|(a, b)| *a += b),
            ReduceOp::Max => acc.iter_mut().zip(v).for_each(|(a, b)| *a = (*a).max(*b)),
            ReduceOp::Min => acc.iter_mut().zip(v).for_each(|(a, b)| *a = (*a).min(*b)),
        }
    }
}

/// A communicator: a set of processes that synchronize and exchange data.
#[derive(Clone)]
pub struct Comm {
    state: Arc<CommState>,
}

impl Comm {
    pub(crate) fn world(cluster: &ClusterState) -> Self {
        Self {
            state: Arc::new(CommState {
                ranks: (0..cluster.spec.nprocs()).collect(),
                rv: Rendezvous::new(cluster.spec.nprocs()),
            }),
        }
    }

    fn from_ranks(ranks: Vec<usize>) -> Self {
        let n = ranks.len();
        Self { state: Arc::new(CommState { ranks, rv: Rendezvous::new(n) }) }
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.state.ranks.len()
    }

    /// World ranks of the members, in member-index order.
    pub fn ranks(&self) -> &[usize] {
        &self.state.ranks
    }

    /// This process's index within the communicator.
    pub fn rank_of(&self, p: &Proc) -> usize {
        self.state
            .ranks
            .iter()
            .position(|&r| r == p.rank())
            .expect("process is not a member of this communicator")
    }

    /// World rank of member `idx`.
    pub fn world_rank(&self, idx: usize) -> usize {
        self.state.ranks[idx]
    }

    fn charge(&self, p: &Proc, max_clock: u64, shape: CollectiveShape, bytes: u64) {
        // Injected partitions (or a crashed member node) stall the collective
        // until every member pair is connected again. All members agreed on
        // `max_clock` in the rendezvous, so they compute the same stall and
        // stay clock-aligned — fault injection never breaks determinism here.
        let start = if p.net().fault_plan().is_some() {
            let mut nodes: Vec<usize> =
                self.state.ranks.iter().map(|&r| p.spec().node_of(r)).collect();
            nodes.sort_unstable();
            nodes.dedup();
            let ready = p.net().group_ready_at(&nodes, max_clock);
            if ready > max_clock {
                let t = p.telemetry();
                t.counter("comm", "partition_stalls", &[]).inc();
                t.span(EventKind::Retry, max_clock, ready, p.node() as u32, 0, ready - max_clock);
            }
            ready
        } else {
            max_clock
        };
        let (depth, hop) = p.net().collective_breakdown(shape, self.size(), bytes);
        let cost = depth * hop;
        let (shape_name, shape_id) = match shape {
            CollectiveShape::Tree => ("tree", 0u64),
            CollectiveShape::Ring => ("ring", 1),
            CollectiveShape::Flat => ("flat", 2),
        };
        let t = p.telemetry();
        t.counter("comm", "collectives", &[("shape", shape_name)]).inc();
        t.counter("comm", "bytes", &[("shape", shape_name)]).add(bytes);
        // Scale-out observables (mm-scope): how deep the fan-out critical
        // path goes at this communicator size, and the virtual time the
        // dependent hop chain costs — the collective's per-hop wait
        // attribution.
        t.gauge("comm", "fanout_depth", &[("shape", shape_name)]).set_max(depth);
        t.counter("comm", "hop_wait_ns", &[("shape", shape_name)]).add(cost);
        // Each collective is its own trace so per-policy critical-path
        // attribution gets a "Collective" bucket; the dependent hop chain
        // lands as NetHop children (`detail` = hop index on the critical
        // path).
        let ctx = t.trace_begin(p.node() as u32);
        if !ctx.is_none() {
            for h in 0..depth {
                t.trace_child(
                    ctx,
                    Stage::NetHop,
                    start + h * hop,
                    start + (h + 1) * hop,
                    p.node() as u32,
                    bytes,
                    shape_name,
                    h,
                );
            }
            t.trace_end(
                ctx,
                Stage::Collective,
                start,
                start + cost,
                p.node() as u32,
                bytes,
                "Collective",
                shape_id,
            );
        }
        p.advance_to(start + cost);
    }

    /// Synchronize all members; everyone resumes at
    /// `max(member clocks) + tree cost`.
    pub fn barrier(&self, p: &Proc) {
        let idx = self.rank_of(p);
        let entered = p.now();
        let out = self.state.rv.exchange(idx, p.now(), Box::new(()), |_| Box::new(()) as AnyRes);
        self.charge(p, out.max_clock, CollectiveShape::Tree, 8);
        p.telemetry().span(
            EventKind::Barrier,
            entered,
            p.now(),
            p.node() as u32,
            0,
            p.rank() as u64,
        );
    }

    /// Elementwise allreduce over `f64` vectors, returning a shared handle:
    /// every member receives an `Arc` of the **same** reduced vector, so no
    /// per-rank deep copy is made. Contributions are folded in member
    /// order, so results are bitwise deterministic.
    pub fn allreduce_f64_shared(&self, p: &Proc, vals: &[f64], op: ReduceOp) -> Arc<Vec<f64>> {
        let idx = self.rank_of(p);
        let bytes = (vals.len() * 8) as u64;
        let out = self.state.rv.exchange(idx, p.now(), Box::new(vals.to_vec()), move |contribs| {
            let mut iter = contribs
                .into_iter()
                .map(|b| *b.downcast::<Vec<f64>>().expect("allreduce_f64 type mismatch"));
            let mut acc = iter.next().expect("nonempty comm");
            for v in iter {
                assert_eq!(v.len(), acc.len(), "allreduce length mismatch");
                op.fold_f64(&mut acc, &v);
            }
            Box::new(Arc::new(acc)) as AnyRes
        });
        // Reduce + broadcast: two tree phases.
        self.charge(p, out.max_clock, CollectiveShape::Tree, bytes * 2);
        out.result.downcast_ref::<Arc<Vec<f64>>>().expect("result type").clone()
    }

    /// Elementwise allreduce over `f64` vectors. Delegates to
    /// [`allreduce_f64_shared`](Self::allreduce_f64_shared); the deep copy
    /// happens only here, for callers that need ownership.
    pub fn allreduce_f64(&self, p: &Proc, vals: &[f64], op: ReduceOp) -> Vec<f64> {
        let shared = self.allreduce_f64_shared(p, vals, op);
        Arc::try_unwrap(shared).unwrap_or_else(|a| (*a).clone())
    }

    /// Elementwise allreduce over `u64` vectors; every member receives an
    /// `Arc` of the same result (no per-rank copy).
    pub fn allreduce_u64_shared(&self, p: &Proc, vals: &[u64], op: ReduceOp) -> Arc<Vec<u64>> {
        let idx = self.rank_of(p);
        let bytes = (vals.len() * 8) as u64;
        let out = self.state.rv.exchange(idx, p.now(), Box::new(vals.to_vec()), move |contribs| {
            let mut iter = contribs
                .into_iter()
                .map(|b| *b.downcast::<Vec<u64>>().expect("allreduce_u64 type mismatch"));
            let mut acc = iter.next().expect("nonempty comm");
            for v in iter {
                op.fold_u64(&mut acc, &v);
            }
            Box::new(Arc::new(acc)) as AnyRes
        });
        self.charge(p, out.max_clock, CollectiveShape::Tree, bytes * 2);
        out.result.downcast_ref::<Arc<Vec<u64>>>().expect("result type").clone()
    }

    /// Elementwise allreduce over `u64` vectors (owned result).
    pub fn allreduce_u64(&self, p: &Proc, vals: &[u64], op: ReduceOp) -> Vec<u64> {
        let shared = self.allreduce_u64_shared(p, vals, op);
        Arc::try_unwrap(shared).unwrap_or_else(|a| (*a).clone())
    }

    /// Allgather: every member contributes a `Vec<T>`; everyone receives an
    /// `Arc` of the **same** concatenation in member order (no per-rank
    /// copy). `elem_bytes` sizes the network charge.
    pub fn allgather_shared<T>(&self, p: &Proc, vals: Vec<T>, elem_bytes: u64) -> Arc<Vec<T>>
    where
        T: Clone + Send + Sync + 'static,
    {
        let idx = self.rank_of(p);
        let bytes = vals.len() as u64 * elem_bytes;
        let out = self.state.rv.exchange(idx, p.now(), Box::new(vals), |contribs| {
            let mut all = Vec::new();
            for c in contribs {
                all.extend(*c.downcast::<Vec<T>>().expect("allgather type mismatch"));
            }
            Box::new(Arc::new(all)) as AnyRes
        });
        self.charge(p, out.max_clock, CollectiveShape::Ring, bytes * self.size() as u64);
        out.result.downcast_ref::<Arc<Vec<T>>>().expect("result type").clone()
    }

    /// Allgather with an owned result, for callers that consume it.
    pub fn allgather<T>(&self, p: &Proc, vals: Vec<T>, elem_bytes: u64) -> Vec<T>
    where
        T: Clone + Send + Sync + 'static,
    {
        let shared = self.allgather_shared(p, vals, elem_bytes);
        Arc::try_unwrap(shared).unwrap_or_else(|a| (*a).clone())
    }

    /// Broadcast from member `root`, returning a shared handle: every
    /// member receives an `Arc` of the root's value (no per-rank copy).
    pub fn bcast_shared<T>(&self, p: &Proc, root: usize, value: Option<T>, bytes: u64) -> Arc<T>
    where
        T: Clone + Send + Sync + 'static,
    {
        let idx = self.rank_of(p);
        debug_assert_eq!(idx == root, value.is_some(), "exactly the root supplies a value");
        let out = self.state.rv.exchange(idx, p.now(), Box::new(value), move |contribs| {
            let mut found = None;
            for (i, c) in contribs.into_iter().enumerate() {
                let v = *c.downcast::<Option<T>>().expect("bcast type mismatch");
                if let Some(v) = v {
                    assert_eq!(i, root, "non-root member supplied a bcast value");
                    found = Some(v);
                }
            }
            Box::new(Arc::new(found.expect("root must supply a value"))) as AnyRes
        });
        self.charge(p, out.max_clock, CollectiveShape::Tree, bytes);
        out.result.downcast_ref::<Arc<T>>().expect("result type").clone()
    }

    /// Broadcast from member `root`: the root passes `Some(value)`, others
    /// pass `None`; everyone receives the root's value (owned).
    pub fn bcast<T>(&self, p: &Proc, root: usize, value: Option<T>, bytes: u64) -> T
    where
        T: Clone + Send + Sync + 'static,
    {
        let shared = self.bcast_shared(p, root, value, bytes);
        Arc::try_unwrap(shared).unwrap_or_else(|a| (*a).clone())
    }

    /// Gather member contributions at member `root` (others receive `None`).
    /// The root's view is an `Arc` of the rendezvous result — no copy.
    pub fn gather_shared<T>(&self, p: &Proc, root: usize, val: T, bytes: u64) -> Option<Arc<Vec<T>>>
    where
        T: Clone + Send + Sync + 'static,
    {
        let idx = self.rank_of(p);
        let out = self.state.rv.exchange(idx, p.now(), Box::new(val), |contribs| {
            let all: Vec<T> = contribs
                .into_iter()
                .map(|c| *c.downcast::<T>().expect("gather type mismatch"))
                .collect();
            Box::new(Arc::new(all)) as AnyRes
        });
        self.charge(p, out.max_clock, CollectiveShape::Tree, bytes * self.size() as u64);
        if idx == root {
            Some(out.result.downcast_ref::<Arc<Vec<T>>>().expect("result type").clone())
        } else {
            None
        }
    }

    /// Gather member contributions at member `root` (owned result).
    pub fn gather<T>(&self, p: &Proc, root: usize, val: T, bytes: u64) -> Option<Vec<T>>
    where
        T: Clone + Send + Sync + 'static,
    {
        self.gather_shared(p, root, val, bytes)
            .map(|shared| Arc::try_unwrap(shared).unwrap_or_else(|a| (*a).clone()))
    }

    /// Split into sub-communicators by `color` (like `MPI_Comm_split`).
    /// Members with the same color form a new communicator ordered by
    /// `(key, world rank)`.
    pub fn split(&self, p: &Proc, color: u64, key: usize) -> Comm {
        let idx = self.rank_of(p);
        let my_world = p.rank();
        let out =
            self.state.rv.exchange(idx, p.now(), Box::new((color, key, my_world)), |contribs| {
                let mut by_color: BTreeMap<u64, Vec<(usize, usize)>> = BTreeMap::new();
                for c in contribs {
                    let (color, key, world) =
                        *c.downcast::<(u64, usize, usize)>().expect("split type mismatch");
                    by_color.entry(color).or_default().push((key, world));
                }
                let mut comms: BTreeMap<u64, Comm> = BTreeMap::new();
                for (color, mut members) in by_color {
                    members.sort();
                    comms.insert(
                        color,
                        Comm::from_ranks(members.into_iter().map(|(_, w)| w).collect()),
                    );
                }
                Box::new(comms) as AnyRes
            });
        self.charge(p, out.max_clock, CollectiveShape::Tree, 24);
        out.result
            .downcast_ref::<BTreeMap<u64, Comm>>()
            .expect("result type")
            .get(&color)
            .expect("own color present")
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::Cluster;
    use crate::topology::ClusterSpec;

    #[test]
    fn barrier_aligns_clocks() {
        let cluster = Cluster::new(ClusterSpec::new(2, 2));
        let (times, _) = cluster.run(|p| {
            // Stagger clocks: rank r computes r seconds of work.
            p.advance(p.rank() as u64 * 1_000_000);
            p.world().barrier(p);
            p.now()
        });
        // Everyone resumes at the max (rank 3's 3 ms) plus tree cost.
        assert!(times.iter().all(|&t| t >= 3_000_000));
        let spread = times.iter().max().unwrap() - times.iter().min().unwrap();
        assert_eq!(spread, 0, "barrier must align clocks exactly");
    }

    #[test]
    fn partition_stalls_collective_deterministically() {
        let cluster = Cluster::new(ClusterSpec::new(2, 2));
        let plan = megammap_sim::FaultPlan::new(11).partition(0, 1, 0, 5_000_000).build();
        cluster.net().attach_faults(plan);
        let (times, _) = cluster.run(|p| {
            p.world().barrier(p);
            p.now()
        });
        // The barrier spans the cut: everyone waits for the heal, together.
        assert!(times.iter().all(|&t| t >= 5_000_000), "{times:?}");
        let spread = times.iter().max().unwrap() - times.iter().min().unwrap();
        assert_eq!(spread, 0, "stalled barrier must still align clocks");
    }

    #[test]
    fn allreduce_sum_deterministic() {
        let cluster = Cluster::new(ClusterSpec::new(2, 2));
        let (outs, _) = cluster.run(|p| {
            let v = vec![p.rank() as f64, 1.0];
            p.world().allreduce_f64(p, &v, ReduceOp::Sum)
        });
        for o in outs {
            assert_eq!(o, vec![6.0, 4.0]);
        }
    }

    #[test]
    fn allreduce_max_min() {
        let cluster = Cluster::new(ClusterSpec::new(1, 4));
        let (outs, _) = cluster.run(|p| {
            let hi = p.world().allreduce_u64(p, &[p.rank() as u64], ReduceOp::Max);
            let lo = p.world().allreduce_u64(p, &[p.rank() as u64], ReduceOp::Min);
            (hi[0], lo[0])
        });
        assert!(outs.iter().all(|&(h, l)| h == 3 && l == 0));
    }

    #[test]
    fn allgather_concatenates_in_rank_order() {
        let cluster = Cluster::new(ClusterSpec::new(1, 3));
        let (outs, _) =
            cluster.run(|p| p.world().allgather(p, vec![p.rank() * 10, p.rank() * 10 + 1], 8));
        for o in outs {
            assert_eq!(o, vec![0, 1, 10, 11, 20, 21]);
        }
    }

    #[test]
    fn bcast_distributes_root_value() {
        let cluster = Cluster::new(ClusterSpec::new(2, 2));
        let (outs, _) = cluster.run(|p| {
            let v = if p.rank() == 1 { Some("payload".to_string()) } else { None };
            p.world().bcast(p, 1, v, 7)
        });
        assert!(outs.iter().all(|o| o == "payload"));
    }

    #[test]
    fn gather_collects_at_root() {
        let cluster = Cluster::new(ClusterSpec::new(1, 4));
        let (outs, _) = cluster.run(|p| p.world().gather(p, 2, p.rank() as u64, 8));
        for (r, o) in outs.iter().enumerate() {
            if r == 2 {
                assert_eq!(o.as_deref(), Some(&[0u64, 1, 2, 3][..]));
            } else {
                assert!(o.is_none());
            }
        }
    }

    #[test]
    fn split_forms_color_groups() {
        let cluster = Cluster::new(ClusterSpec::new(2, 2));
        let (outs, _) = cluster.run(|p| {
            let color = (p.rank() % 2) as u64;
            let sub = p.world().split(p, color, p.rank());
            // Each subgroup has 2 members; verify membership and a working
            // collective inside the subgroup.
            let total = sub.allreduce_u64(p, &[1], ReduceOp::Sum);
            (sub.size(), total[0], sub.ranks().to_vec())
        });
        for (r, (size, total, ranks)) in outs.iter().enumerate() {
            assert_eq!(*size, 2);
            assert_eq!(*total, 2);
            let expect = if r % 2 == 0 { vec![0, 2] } else { vec![1, 3] };
            assert_eq!(*ranks, expect);
        }
    }

    #[test]
    fn nested_split_recursion() {
        // DBSCAN/RF style: split world in halves, then split halves again.
        let cluster = Cluster::new(ClusterSpec::new(1, 4));
        let (outs, _) = cluster.run(|p| {
            let half = p.world().split(p, (p.rank() / 2) as u64, p.rank());
            let quarter = half.split(p, (p.rank() % 2) as u64, p.rank());
            (half.size(), quarter.size())
        });
        assert!(outs.iter().all(|&(h, q)| h == 2 && q == 1));
    }
}
