//! The Fig. 6 I/O comparators for the MPI Gray-Scott.
//!
//! The paper compares "the MPI-based implementation for various I/O
//! backends (OrangeFS, tiered filesystem Assise, and tiered I/O buffering
//! system Hermes) vs MegaMmap". These models capture what distinguishes
//! them for a checkpoint-style write of `bytes` per process:
//!
//! * **OrangeFS** — a striped parallel filesystem: the write is synchronous
//!   to the shared PFS; the process waits for its stripe.
//! * **Assise** — client-local NVM acknowledges the write; a background
//!   cleaner drains to the PFS. The process waits only for the local NVMe.
//! * **Hermes** — hierarchical buffering: the write lands in the fastest
//!   tier with room (DRAM burst buffer, then NVMe), draining asynchronously.
//!
//! All three share the trait: **no overlap with compute** — data movement
//! begins when the application calls the I/O routine, which is exactly the
//! edge MegaMmap's always-on asynchronous eviction has over them ("MegaMmap
//! places data during the first compute phase, while all others must wait
//! for this phase to complete").

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use megammap_cluster::Proc;
use megammap_sim::{DeviceModel, DeviceSpec, SharedResource, SimTime, GIB, MIB};

/// Which baseline I/O system handles checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoKind {
    /// Synchronous striped PFS.
    OrangeFs,
    /// Client-local NVM filesystem with background drain.
    Assise,
    /// Tiered burst buffering with background drain.
    Hermes,
}

impl IoKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            IoKind::OrangeFs => "OrangeFS",
            IoKind::Assise => "Assise",
            IoKind::Hermes => "Hermes",
        }
    }
}

struct Inner {
    kind: IoKind,
    pfs: SharedResource,
    /// Node-local burst devices (NVMe class).
    nvme: Vec<DeviceModel>,
    /// DRAM burst-buffer budget per node (Hermes only), bytes remaining.
    dram_left: Vec<AtomicU64>,
    /// Completion time of the latest background drain, per node.
    drain_done: Vec<AtomicU64>,
}

/// A baseline I/O system instance shared by all processes of a run.
#[derive(Clone)]
pub struct IoBackend {
    inner: Arc<Inner>,
}

impl IoBackend {
    /// Build a backend of `kind` for `nodes` nodes.
    ///
    /// `pfs_bandwidth` is the aggregate PFS bandwidth; `nvme_capacity` and
    /// `dram_burst` size the per-node staging resources.
    pub fn new(
        kind: IoKind,
        nodes: usize,
        pfs_bandwidth: u64,
        nvme_capacity: u64,
        dram_burst: u64,
    ) -> Self {
        Self {
            inner: Arc::new(Inner {
                kind,
                pfs: SharedResource::new("baseline-pfs", 100_000, pfs_bandwidth),
                nvme: (0..nodes)
                    .map(|n| {
                        DeviceModel::new(format!("bl{n}/nvme"), DeviceSpec::nvme(nvme_capacity))
                    })
                    .collect(),
                dram_left: (0..nodes).map(|_| AtomicU64::new(dram_burst)).collect(),
                drain_done: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            }),
        }
    }

    /// Defaults mirroring the scaled testbed: 2 GB/s aggregate PFS, 128 MB
    /// NVMe, 16 MB DRAM burst.
    pub fn with_defaults(kind: IoKind, nodes: usize) -> Self {
        Self::new(kind, nodes, 2 * GIB, 128 * MIB, 16 * MIB)
    }

    /// Which system this is.
    pub fn kind(&self) -> IoKind {
        self.inner.kind
    }

    fn bump_drain(&self, node: usize, t: SimTime) {
        let slot = &self.inner.drain_done[node];
        let mut cur = slot.load(Ordering::Acquire);
        while t > cur {
            match slot.compare_exchange_weak(cur, t, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return,
                Err(a) => cur = a,
            }
        }
    }

    /// Write `bytes` of checkpoint data from process `p`. The process's
    /// clock advances by however long *this* system makes it wait.
    pub fn checkpoint(&self, p: &Proc, bytes: u64) {
        let node = p.node();
        // All systems serialize the data once (format conversion).
        p.advance(p.cpu().serde_ns(bytes));
        let now_serde = p.now();
        match self.inner.kind {
            IoKind::OrangeFs => {
                // Synchronous stripe write to the shared PFS.
                let done = self.inner.pfs.acquire_causal_pipelined(now_serde, bytes);
                p.advance_to(done);
            }
            IoKind::Assise => {
                // Local NVM write acknowledges; cleaner drains to PFS.
                let local_done = self.inner.nvme[node].io(now_serde, bytes);
                p.advance_to(local_done);
                let drained = self.inner.pfs.acquire_causal_pipelined(local_done, bytes);
                self.bump_drain(node, drained);
            }
            IoKind::Hermes => {
                // Burst into DRAM while the budget lasts, else NVMe; drain
                // to PFS in the background either way.
                let dram = &self.inner.dram_left[node];
                let from_dram;
                let mut cur = dram.load(Ordering::Acquire);
                loop {
                    let take = cur.min(bytes);
                    match dram.compare_exchange_weak(
                        cur,
                        cur - take,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => {
                            from_dram = take;
                            break;
                        }
                        Err(a) => cur = a,
                    }
                }
                let rest = bytes - from_dram;
                // DRAM portion is a memcpy; NVMe portion waits on the device.
                p.advance(p.cpu().memcpy_ns(from_dram));
                if rest > 0 {
                    let nvme_done = self.inner.nvme[node].io(p.now(), rest);
                    p.advance_to(nvme_done);
                }
                let drained = self.inner.pfs.acquire_causal_pipelined(p.now(), bytes);
                self.bump_drain(node, drained);
            }
        }
    }

    /// Wait for background drains to finish (job end / msync semantics).
    pub fn finalize(&self, p: &Proc) {
        let done = self.inner.drain_done[p.node()].load(Ordering::Acquire);
        p.advance_to(done);
    }

    /// Total bytes that reached the PFS.
    pub fn pfs_bytes(&self) -> u64 {
        self.inner.pfs.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megammap_cluster::{Cluster, ClusterSpec};

    fn run_ckpt(kind: IoKind, bytes: u64) -> (u64, u64) {
        let cluster = Cluster::new(ClusterSpec::new(1, 1).dram_per_node(1 << 30));
        let be = IoBackend::with_defaults(kind, 1);
        let be2 = be.clone();
        let (outs, _) = cluster.run(move |p| {
            be2.checkpoint(p, bytes);
            let after_ckpt = p.now();
            be2.finalize(p);
            (after_ckpt, p.now())
        });
        outs[0]
    }

    #[test]
    fn orangefs_is_fully_synchronous() {
        let (ckpt, fin) = run_ckpt(IoKind::OrangeFs, 64 * MIB);
        assert_eq!(ckpt, fin, "nothing left to drain after a sync write");
        // 64 MiB at 2 GiB/s ≈ 31 ms, plus serde.
        assert!(ckpt > 25_000_000, "ckpt {ckpt}");
    }

    #[test]
    fn assise_acks_at_local_nvme_speed() {
        let (ckpt, fin) = run_ckpt(IoKind::Assise, 64 * MIB);
        assert!(fin > ckpt, "background drain outlives the ack");
        let (ofs_ckpt, _) = run_ckpt(IoKind::OrangeFs, 64 * MIB);
        assert!(ckpt < ofs_ckpt, "local NVM ack {ckpt} must beat sync PFS {ofs_ckpt}");
    }

    #[test]
    fn hermes_dram_burst_beats_assise_until_exhausted() {
        // Small checkpoint fits the DRAM burst: nearly free.
        let (small_h, _) = run_ckpt(IoKind::Hermes, 8 * MIB);
        let (small_a, _) = run_ckpt(IoKind::Assise, 8 * MIB);
        assert!(small_h < small_a, "hermes {small_h} vs assise {small_a}");
        // Large checkpoint overflows to NVMe: cost grows superlinearly
        // relative to the in-budget case.
        let (big_h, _) = run_ckpt(IoKind::Hermes, 64 * MIB);
        assert!(big_h > small_h * 4);
    }

    #[test]
    fn drain_accumulates_across_checkpoints() {
        let cluster = Cluster::new(ClusterSpec::new(1, 1).dram_per_node(1 << 30));
        let be = IoBackend::with_defaults(IoKind::Assise, 1);
        let be2 = be.clone();
        let (outs, _) = cluster.run(move |p| {
            for _ in 0..4 {
                be2.checkpoint(p, 16 * MIB);
            }
            let before = p.now();
            be2.finalize(p);
            p.now() - before
        });
        assert!(outs[0] > 0, "finalize must wait for the queued drains");
        assert_eq!(be.pfs_bytes(), 4 * 16 * MIB);
    }
}
