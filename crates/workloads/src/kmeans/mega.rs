//! KMeans‖ on MegaMmap (the paper's Listing 1 workload).
//!
//! The dataset is a persistent `MmVec<Point3D>` named by URL (parquet in
//! Listing 1; any backend works). Every sweep is a PGAS-partitioned,
//! sequential, read-only transaction; the final assignments are persisted
//! through a file-backed vector, "persisted automatically using a
//! file-backed MegaMmap".

use megammap::prelude::*;
use megammap_cluster::comm::ReduceOp;
use megammap_cluster::Proc;

use super::{sampled, select_k, KMeansConfig, KMeansResult};
use crate::point::Point3D;

/// Bulk sweep chunk (elements) — amortizes per-access overhead exactly the
/// way the paper's iterator does via its last-page fast path.
const CHUNK: usize = 2048;

/// A MegaMmap KMeans job description.
pub struct MegaKMeans<'a> {
    /// The deployed runtime.
    pub rt: &'a Runtime,
    /// Dataset vector URL (e.g. `pq:///points.parquet`, `obj://bkt/pts`).
    pub url: String,
    /// Where to persist cluster assignments (`None` to skip).
    pub assign_url: Option<String>,
    /// Algorithm parameters.
    pub cfg: KMeansConfig,
    /// pcache bound per process (`BoundMemory`).
    pub pcache_bytes: u64,
}

/// Sweep this process's partition, calling `f(global_idx, point)`.
fn sweep(
    p: &Proc,
    v: &MmVec<Point3D>,
    range: std::ops::Range<u64>,
    flops_per_point: u64,
    mut f: impl FnMut(u64, &Point3D),
) {
    let tx = v
        .tx(p, TxKind::seq(range.start, range.end - range.start), Access::ReadOnly)
        .expect("begin sweep tx");
    let mut buf = vec![Point3D::default(); CHUNK];
    let mut i = range.start;
    while i < range.end {
        let n = CHUNK.min((range.end - i) as usize);
        v.read_into(p, i, &mut buf[..n]).expect("sweep read");
        for (k, pt) in buf[..n].iter().enumerate() {
            f(i + k as u64, pt);
        }
        p.compute_flops(flops_per_point * n as u64);
        i += n as u64;
    }
    tx.end().expect("end sweep tx");
}

/// Run KMeans‖ over the cluster; every process calls this (SPMD).
pub fn run(p: &Proc, job: &MegaKMeans<'_>) -> KMeansResult {
    let cfg = job.cfg;
    let world = p.world();
    let v: MmVec<Point3D> =
        MmVec::open(job.rt, p, &job.url, VecOptions::new().pcache(job.pcache_bytes))
            .expect("open dataset vector");
    v.pgas(p, p.rank(), p.nprocs());
    let n = v.len();
    assert!(n > 0, "empty dataset at {}", job.url);
    let local = v.local_range();

    // ---- KMeans|| initialization ---------------------------------------
    // Seed candidate: global point 0 (every process derives it identically).
    let tx = v.tx(p, TxKind::seq(0, 1), Access::ReadOnly).expect("begin seed tx");
    let mut candidates = vec![v.load(p, &tx, 0)];
    tx.end().expect("end seed tx");
    for round in 0..cfg.init_rounds {
        // Pass 1: distance mass.
        let mut local_mass = 0.0f64;
        sweep(p, &v, local.clone(), Point3D::nearest_flops(candidates.len()), |_, pt| {
            local_mass += pt.nearest_centroid(&candidates).1 as f64;
        });
        let sum_d2 = world.allreduce_f64_shared(p, &[local_mass], ReduceOp::Sum)[0];
        // Pass 2: oversample.
        let mut picked: Vec<Point3D> = Vec::new();
        sweep(p, &v, local.clone(), Point3D::nearest_flops(candidates.len()) + 4, |idx, pt| {
            let d2 = pt.nearest_centroid(&candidates).1 as f64;
            if sampled(&cfg, round, idx, d2, sum_d2) {
                picked.push(*pt);
            }
        });
        let new = world.allgather_shared(p, picked, Point3D::SIZE as u64);
        candidates.extend(new.iter().copied());
    }
    // Weigh candidates, then reduce to k (deterministic on every process).
    let mut weights = vec![0u64; candidates.len()];
    sweep(p, &v, local.clone(), Point3D::nearest_flops(candidates.len()), |_, pt| {
        weights[pt.nearest_centroid(&candidates).0] += 1;
    });
    let weights = world.allreduce_u64_shared(p, &weights, ReduceOp::Sum);
    let mut ks = select_k(&candidates, &weights, cfg.k);

    // ---- Lloyd iterations ------------------------------------------------
    let mut assigns: Vec<u32> = Vec::with_capacity((local.end - local.start) as usize);
    for iter in 0..cfg.max_iter {
        let mut acc = vec![0.0f64; cfg.k * 4]; // xyz sums + count per cluster
        assigns.clear();
        sweep(p, &v, local.clone(), Point3D::nearest_flops(cfg.k), |_, pt| {
            let (c, _) = pt.nearest_centroid(&ks);
            acc[c * 4] += pt.x as f64;
            acc[c * 4 + 1] += pt.y as f64;
            acc[c * 4 + 2] += pt.z as f64;
            acc[c * 4 + 3] += 1.0;
            if iter + 1 == cfg.max_iter {
                assigns.push(c as u32);
            }
        });
        let acc = world.allreduce_f64_shared(p, &acc, ReduceOp::Sum);
        for (c, k) in ks.iter_mut().enumerate() {
            let cnt = acc[c * 4 + 3];
            if cnt > 0.0 {
                *k = Point3D::new(
                    (acc[c * 4] / cnt) as f32,
                    (acc[c * 4 + 1] / cnt) as f32,
                    (acc[c * 4 + 2] / cnt) as f32,
                );
            }
        }
    }

    // ---- Inertia + persisted assignments ----------------------------------
    let mut local_inertia = 0.0f64;
    sweep(p, &v, local.clone(), Point3D::nearest_flops(cfg.k), |_, pt| {
        local_inertia += pt.nearest_centroid(&ks).1 as f64;
    });
    let inertia = world.allreduce_f64_shared(p, &[local_inertia], ReduceOp::Sum)[0];

    if let Some(url) = &job.assign_url {
        let av: MmVec<u32> =
            MmVec::open(job.rt, p, url, VecOptions::new().len(n).pcache(job.pcache_bytes))
                .expect("open assignment vector");
        let tx = av
            .tx(p, TxKind::seq(local.start, local.end - local.start), Access::WriteLocal)
            .expect("begin assignment tx");
        av.write_slice(p, local.start, &assigns).expect("persist assignments");
        tx.end().expect("end assignment tx");
        av.flush_async(p).expect("stage assignments");
    }
    world.barrier(p);
    KMeansResult { centroids: ks, inertia }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{generate, HaloParams};
    use crate::verify::ref_kmeans;
    use megammap_cluster::{Cluster, ClusterSpec};
    use megammap_formats::DataUrl;

    fn setup(
        nodes: usize,
        procs: usize,
        n_points: usize,
    ) -> (Cluster, Runtime, crate::datagen::HaloDataset) {
        let cluster = Cluster::new(ClusterSpec::new(nodes, procs).dram_per_node(1 << 30));
        let rt = Runtime::new(&cluster, RuntimeConfig::default().with_page_size(4096));
        let data = generate(HaloParams { n_points, ..Default::default() });
        let obj = rt.backends().open(&DataUrl::parse("obj://data/pts.bin").unwrap()).unwrap();
        data.write_object(obj.as_ref()).unwrap();
        (cluster, rt, data)
    }

    #[test]
    fn finds_the_halos_and_matches_reference() {
        let (cluster, rt, data) = setup(2, 2, 2000);
        let rt2 = rt.clone();
        let (outs, report) = cluster.run(move |p| {
            let job = MegaKMeans {
                rt: &rt2,
                url: "obj://data/pts.bin".into(),
                assign_url: Some("obj://data/assign.bin".into()),
                cfg: KMeansConfig::default(),
                pcache_bytes: 1 << 20,
            };
            run(p, &job)
        });
        // Every process agrees bit-for-bit.
        for o in &outs[1..] {
            assert_eq!(o.centroids, outs[0].centroids);
            assert_eq!(o.inertia, outs[0].inertia);
        }
        // Centroids recover the halos.
        for c in &data.centers {
            let d = outs[0].centroids.iter().map(|k| k.dist(c)).fold(f32::INFINITY, f32::min);
            assert!(d < 5.0, "halo {c:?} missed by {d}");
        }
        // Inertia is near the isotropic-gaussian expectation and matches a
        // reference Lloyd run from the same initialization.
        let (_, ref_inertia) = ref_kmeans(&data.points, &outs[0].centroids, 0);
        assert!((outs[0].inertia - ref_inertia).abs() / ref_inertia < 1e-6);
        assert!(report.makespan_ns > 0);
    }

    #[test]
    fn assignments_persisted_to_backend() {
        let (cluster, rt, data) = setup(1, 2, 400);
        let rt2 = rt.clone();
        let (outs, _) = cluster.run(move |p| {
            let job = MegaKMeans {
                rt: &rt2,
                url: "obj://data/pts.bin".into(),
                assign_url: Some("obj://data/assign.bin".into()),
                cfg: KMeansConfig::default(),
                pcache_bytes: 1 << 20,
            };
            let r = run(p, &job);
            if p.rank() == 0 {
                rt2.shutdown(p.now()).unwrap();
            }
            p.world().barrier(p);
            r
        });
        let obj = rt.backends().open(&DataUrl::parse("obj://data/assign.bin").unwrap()).unwrap();
        let bytes = megammap_formats::object::read_all(obj.as_ref()).unwrap();
        assert_eq!(bytes.len(), 400 * 4);
        // Assignments must agree with nearest-centroid of the output.
        let centroids = &outs[0].centroids;
        let mut agree = 0usize;
        for (i, pt) in data.points.iter().enumerate() {
            let stored = u32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().unwrap());
            if stored as usize == pt.nearest_centroid(centroids).0 {
                agree += 1;
            }
        }
        assert_eq!(agree, 400, "persisted assignments must match final centroids");
    }

    #[test]
    fn bounded_memory_changes_time_not_answer() {
        let (cluster, rt, _) = setup(1, 1, 1500);
        let rt2 = rt.clone();
        let (big, _) = cluster.run(|p| {
            run(
                p,
                &MegaKMeans {
                    rt: &rt2,
                    url: "obj://data/pts.bin".into(),
                    assign_url: None,
                    cfg: KMeansConfig::default(),
                    pcache_bytes: 1 << 22,
                },
            )
        });
        cluster.reset();
        let rt3 = rt.clone();
        let (small, _) = cluster.run(|p| {
            run(
                p,
                &MegaKMeans {
                    rt: &rt3,
                    url: "obj://data/pts.bin".into(),
                    assign_url: None,
                    cfg: KMeansConfig::default(),
                    pcache_bytes: 8 * 1024,
                },
            )
        });
        assert_eq!(big[0].centroids, small[0].centroids, "DRAM bound must not change results");
        assert_eq!(big[0].inertia, small[0].inertia);
    }
}
