//! KMeans‖ clustering (paper §IV: "a custom version of KMeans||, which is
//! the same algorithm used in Apache Spark").
//!
//! The algorithm: several sequential read-only sweeps oversample candidate
//! centroids with probability proportional to squared distance from the
//! current candidate set; the weighted candidates are reduced to `k`
//! centroids; then Lloyd iterations assign points and update centroids.
//!
//! Everything stochastic is derived from `splitmix64(seed, global index)`,
//! so the MegaMmap and Spark variants make *identical* decisions and their
//! outputs can be compared bit-for-bit (and against [`crate::verify`]).

pub mod mega;
pub mod spark;

use megammap::tx::splitmix64;

use crate::point::Point3D;

/// KMeans configuration (paper defaults: k=8, max_iter=4).
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Cluster count.
    pub k: usize,
    /// Lloyd iterations after initialization.
    pub max_iter: usize,
    /// Oversampling rounds for KMeans‖ initialization.
    pub init_rounds: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self { k: 8, max_iter: 4, init_rounds: 3, seed: 1 }
    }
}

/// Result of a KMeans run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Final centroids.
    pub centroids: Vec<Point3D>,
    /// Sum of squared distances to the nearest centroid.
    pub inertia: f64,
}

/// Uniform hash to `[0, 1)` from `(seed, index)`.
#[inline]
pub(crate) fn hash01(seed: u64, idx: u64) -> f64 {
    (splitmix64(seed ^ idx.wrapping_mul(0x9E3779B97F4A7C15)) >> 11) as f64 / (1u64 << 53) as f64
}

/// Should global point `idx` be sampled this `round`, given its squared
/// distance `d2`, the global distance mass `sum_d2`, and the oversampling
/// factor `l`? (The KMeans‖ sampling rule, derandomized per index.)
#[inline]
pub(crate) fn sampled(cfg: &KMeansConfig, round: usize, idx: u64, d2: f64, sum_d2: f64) -> bool {
    if sum_d2 <= 0.0 {
        return false;
    }
    let l = (2 * cfg.k) as f64;
    let prob = (l * d2 / sum_d2).min(1.0);
    hash01(cfg.seed.wrapping_add(round as u64 + 1), idx) < prob
}

/// Reduce weighted candidates to `k` centroids: greedy weighted
/// kmeans++-style selection (highest weight first, then maximize
/// `weight × d²` to the chosen set). Deterministic.
pub(crate) fn select_k(candidates: &[Point3D], weights: &[u64], k: usize) -> Vec<Point3D> {
    assert_eq!(candidates.len(), weights.len());
    assert!(!candidates.is_empty(), "KMeans|| produced no candidates");
    let mut chosen: Vec<Point3D> = Vec::with_capacity(k);
    let first = weights
        .iter()
        .enumerate()
        .max_by_key(|(i, &w)| (w, usize::MAX - i))
        .map(|(i, _)| i)
        .expect("nonempty");
    chosen.push(candidates[first]);
    while chosen.len() < k.min(candidates.len()) {
        let mut best = (0usize, -1.0f64);
        for (i, c) in candidates.iter().enumerate() {
            let d2 = chosen.iter().map(|ch| c.dist2(ch) as f64).fold(f64::INFINITY, f64::min);
            let score = weights[i] as f64 * d2;
            if score > best.1 {
                best = (i, score);
            }
        }
        if best.1 <= 0.0 {
            break; // all remaining candidates coincide with chosen ones
        }
        chosen.push(candidates[best.0]);
    }
    // Degenerate datasets: pad by repeating (harmless for Lloyd).
    while chosen.len() < k {
        chosen.push(chosen[chosen.len() % chosen.len().max(1)]);
    }
    chosen
}

/// Count, for each candidate, how many of `points` are nearest to it.
pub(crate) fn weigh_candidates(points: &[Point3D], candidates: &[Point3D]) -> Vec<u64> {
    let mut w = vec![0u64; candidates.len()];
    for p in points {
        let (i, _) = p.nearest_centroid(candidates);
        w[i] += 1;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{generate, HaloParams};

    #[test]
    fn hash01_uniform_enough() {
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| hash01(7, i)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert_ne!(hash01(1, 5), hash01(2, 5), "seed matters");
    }

    #[test]
    fn sampling_favors_far_points() {
        let cfg = KMeansConfig::default();
        let trials = 4000u64;
        let far = (0..trials).filter(|&i| sampled(&cfg, 0, i, 100.0, 1000.0)).count();
        let near = (0..trials).filter(|&i| sampled(&cfg, 0, i, 0.1, 1000.0)).count();
        assert!(far > near * 10, "far {far} vs near {near}");
        assert!(!sampled(&cfg, 0, 1, 1.0, 0.0), "zero mass samples nothing");
    }

    #[test]
    fn select_k_spreads_over_halos() {
        let d = generate(HaloParams { n_points: 400, ..Default::default() });
        // Candidates: 4 per halo.
        let candidates: Vec<_> = d.points.iter().step_by(25).copied().collect();
        let weights = weigh_candidates(&d.points, &candidates);
        let chosen = select_k(&candidates, &weights, 8);
        assert_eq!(chosen.len(), 8);
        // Every halo center has a chosen centroid nearby.
        for c in &d.centers {
            let nearest = chosen.iter().map(|ch| ch.dist(c)).fold(f32::INFINITY, f32::min);
            assert!(nearest < 30.0, "halo at {c:?} uncovered ({nearest})");
        }
    }

    #[test]
    fn select_k_handles_duplicates() {
        let candidates = vec![Point3D::new(1.0, 1.0, 1.0); 5];
        let weights = vec![3, 1, 1, 1, 1];
        let chosen = select_k(&candidates, &weights, 3);
        assert_eq!(chosen.len(), 3, "padded to k even when degenerate");
    }

    #[test]
    fn weights_count_nearest() {
        let pts = vec![
            Point3D::new(0.0, 0.0, 0.0),
            Point3D::new(0.1, 0.0, 0.0),
            Point3D::new(10.0, 0.0, 0.0),
        ];
        let cands = vec![Point3D::new(0.0, 0.0, 0.0), Point3D::new(10.0, 0.0, 0.0)];
        assert_eq!(weigh_candidates(&pts, &cands), vec![2, 1]);
    }
}
