//! KMeans‖ on the Spark-style baseline (MLlib's algorithm).
//!
//! Identical math to [`super::mega`] — same derandomized sampling, same
//! candidate selection — so the two variants produce the same centroids.
//! What differs is the *system*: the dataset partition lives on the JVM
//! heap in multiple copies, all compute pays the JVM factor, and every
//! aggregate crosses the wire as a serialized TCP exchange.

use megammap_cluster::comm::ReduceOp;
use megammap_cluster::{OomError, Proc};
use megammap_minispark::SparkContext;

use super::{sampled, select_k, weigh_candidates, KMeansConfig, KMeansResult};
use crate::point::Point3D;
use megammap::element::Element;

/// Aggregate helper: Spark's `treeAggregate` — local fold already done,
/// serialized exchange charged to the JVM clock.
fn agg_f64(sc: &SparkContext<'_>, p: &Proc, vals: &[f64]) -> Vec<f64> {
    let _ = sc;
    p.advance(p.cpu().with_slowdown(1.8).serde_ns(vals.len() as u64 * 8));
    p.world().allreduce_f64(p, vals, ReduceOp::Sum)
}

fn agg_u64(sc: &SparkContext<'_>, p: &Proc, vals: &[u64]) -> Vec<u64> {
    let _ = sc;
    p.advance(p.cpu().with_slowdown(1.8).serde_ns(vals.len() as u64 * 8));
    p.world().allreduce_u64(p, vals, ReduceOp::Sum)
}

/// Run the Spark-style KMeans‖ over this process's partition of the
/// dataset. `part_base` is the global index of the partition's first point
/// (needed for the derandomized sampling).
pub fn run(
    p: &Proc,
    partition: Vec<Point3D>,
    part_base: u64,
    cfg: KMeansConfig,
) -> Result<KMeansResult, OomError> {
    let sc = SparkContext::new(p);
    let rdd = sc.load_partition(partition, Point3D::SIZE as u64)?;
    let world = p.world();

    // Seed candidate: global point 0, held by rank 0.
    let seed_pt = if p.rank() == 0 { Some(rdd.records()[0]) } else { None };
    let mut candidates = vec![world.bcast(p, 0, seed_pt, Point3D::SIZE as u64)];

    for round in 0..cfg.init_rounds {
        let flops = Point3D::nearest_flops(candidates.len());
        let cands = candidates.clone();
        let mass = rdd.map(8, flops, |pt| pt.nearest_centroid(&cands).1 as f64)?.reduce(
            1,
            0.0f64,
            |a, b| a + b,
            |a, b| a + b,
        );
        let cands = candidates.clone();
        let cfg2 = cfg;
        let picked: Vec<Point3D> = rdd
            .records()
            .iter()
            .enumerate()
            .filter(|(i, pt)| {
                let d2 = pt.nearest_centroid(&cands).1 as f64;
                sampled(&cfg2, round, part_base + *i as u64, d2, mass)
            })
            .map(|(_, pt)| *pt)
            .collect();
        p.advance(p.cpu().with_slowdown(1.8).flops_ns(flops * rdd.len() as u64));
        candidates.extend(world.allgather(p, picked, Point3D::SIZE as u64));
    }

    let weights = weigh_candidates(rdd.records(), &candidates);
    p.advance(
        p.cpu()
            .with_slowdown(1.8)
            .flops_ns(Point3D::nearest_flops(candidates.len()) * rdd.len() as u64),
    );
    let weights = agg_u64(&sc, p, &weights);
    let mut ks = select_k(&candidates, &weights, cfg.k);

    for _ in 0..cfg.max_iter {
        let mut acc = vec![0.0f64; cfg.k * 4];
        for pt in rdd.records() {
            let (c, _) = pt.nearest_centroid(&ks);
            acc[c * 4] += pt.x as f64;
            acc[c * 4 + 1] += pt.y as f64;
            acc[c * 4 + 2] += pt.z as f64;
            acc[c * 4 + 3] += 1.0;
        }
        p.advance(
            p.cpu().with_slowdown(1.8).flops_ns(Point3D::nearest_flops(cfg.k) * rdd.len() as u64),
        );
        let acc = agg_f64(&sc, p, &acc);
        for (c, k) in ks.iter_mut().enumerate() {
            let cnt = acc[c * 4 + 3];
            if cnt > 0.0 {
                *k = Point3D::new(
                    (acc[c * 4] / cnt) as f32,
                    (acc[c * 4 + 1] / cnt) as f32,
                    (acc[c * 4 + 2] / cnt) as f32,
                );
            }
        }
    }

    let mut local_inertia = 0.0f64;
    for pt in rdd.records() {
        local_inertia += pt.nearest_centroid(&ks).1 as f64;
    }
    p.advance(
        p.cpu().with_slowdown(1.8).flops_ns(Point3D::nearest_flops(cfg.k) * rdd.len() as u64),
    );
    let inertia = agg_f64(&sc, p, &[local_inertia])[0];
    Ok(KMeansResult { centroids: ks, inertia })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{generate, HaloParams};
    use megammap_cluster::{Cluster, ClusterSpec};
    use megammap_sim::{CpuModel, LinkProfile};
    use std::sync::Arc;

    fn spark_cluster(nodes: usize, procs: usize) -> Cluster {
        Cluster::new(
            ClusterSpec::new(nodes, procs)
                .link(LinkProfile::tcp_40g())
                .cpu(CpuModel::jvm())
                .dram_per_node(1 << 30),
        )
    }

    #[test]
    fn matches_expected_clusters() {
        let data = Arc::new(generate(HaloParams { n_points: 2000, ..Default::default() }));
        let cluster = spark_cluster(2, 2);
        let d2 = data.clone();
        let (outs, _) = cluster.run(move |p| {
            let part = d2.partition(p.rank(), p.nprocs()).to_vec();
            let base = (d2.points.len() * p.rank() / p.nprocs()) as u64;
            run(p, part, base, KMeansConfig::default()).unwrap()
        });
        for c in &data.centers {
            let d = outs[0].centroids.iter().map(|k| k.dist(c)).fold(f32::INFINITY, f32::min);
            assert!(d < 5.0, "halo missed by {d}");
        }
    }

    #[test]
    fn spark_and_mega_agree_bitwise() {
        use megammap::prelude::*;
        use megammap_formats::DataUrl;

        let data = Arc::new(generate(HaloParams { n_points: 1200, ..Default::default() }));
        // Spark run.
        let sc_cluster = spark_cluster(2, 1);
        let d2 = data.clone();
        let (spark_out, spark_rep) = sc_cluster.run(move |p| {
            let part = d2.partition(p.rank(), p.nprocs()).to_vec();
            let base = (d2.points.len() * p.rank() / p.nprocs()) as u64;
            run(p, part, base, KMeansConfig::default()).unwrap()
        });
        // Mega run on an RDMA cluster.
        let mm_cluster = Cluster::new(ClusterSpec::new(2, 1).dram_per_node(1 << 30));
        let rt = Runtime::new(&mm_cluster, RuntimeConfig::default().with_page_size(4096));
        let obj = rt.backends().open(&DataUrl::parse("obj://d/p.bin").unwrap()).unwrap();
        data.write_object(obj.as_ref()).unwrap();
        let rt2 = rt.clone();
        let (mega_out, mega_rep) = mm_cluster.run(move |p| {
            crate::kmeans::mega::run(
                p,
                &crate::kmeans::mega::MegaKMeans {
                    rt: &rt2,
                    url: "obj://d/p.bin".into(),
                    assign_url: None,
                    cfg: KMeansConfig::default(),
                    pcache_bytes: 1 << 20,
                },
            )
        });
        assert_eq!(spark_out[0].centroids, mega_out[0].centroids);
        assert_eq!(spark_out[0].inertia, mega_out[0].inertia);
        // Both clusters really ran (the Fig. 5 performance relationship is
        // asserted at realistic scale in the fig5 harness, not at this toy
        // size where one-time stage-in dominates).
        assert!(spark_rep.makespan_ns > 0 && mega_rep.makespan_ns > 0);
    }

    #[test]
    fn spark_memory_is_a_multiple_of_dataset() {
        let data = Arc::new(generate(HaloParams { n_points: 4000, ..Default::default() }));
        let cluster = spark_cluster(1, 1);
        let bytes = (data.points.len() * Point3D::SIZE) as u64;
        let d2 = data.clone();
        let (_, report) =
            cluster.run(move |p| run(p, d2.points.clone(), 0, KMeansConfig::default()).unwrap());
        assert!(
            report.node_peak_mem[0] >= 3 * bytes,
            "peak {} vs dataset {bytes}",
            report.node_peak_mem[0]
        );
    }
}
