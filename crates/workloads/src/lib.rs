//! # megammap-workloads — the paper's evaluation applications
//!
//! Every application the MegaMmap paper evaluates (its §IV), implemented
//! twice: once on the MegaMmap DSM and once in the baseline form the paper
//! compares against (hand-written MPI-style code or the minispark engine):
//!
//! | Workload | MegaMmap variant | Baseline | Figure |
//! |---|---|---|---|
//! | KMeans‖ clustering | [`kmeans::mega`] | [`kmeans::spark`] | 5a, 8 |
//! | Random Forest | [`rf::mega`] | [`rf::spark`] | 5b, 8 |
//! | µDBSCAN | [`dbscan::mega`] | [`dbscan::mpi`] | 5c, 8 |
//! | Gray-Scott | [`gray_scott::mega`] | [`gray_scott::mpi`] | 5d, 6, 7, 8 |
//!
//! Plus:
//!
//! * [`datagen`] — the Gadget-4-like synthetic cosmology generator (the
//!   paper's AD: the internal generator "outputs data in a similar format
//!   to Gadget and can be used to accelerate reproducibility");
//! * [`io_baselines`] — the Fig. 6 comparators: OrangeFS-like synchronous
//!   PFS, Assise-like client-local-NVM filesystem, Hermes-like tiered
//!   buffer — used by the MPI Gray-Scott for checkpointing;
//! * [`loader`] — the baseline-side dataset loading/partitioning code
//!   (exactly what the MegaMmap variants do *not* need — Fig. 4);
//! * [`verify`] — brute-force reference implementations used by the test
//!   suite to check the distributed algorithms' outputs.

pub mod datagen;
pub mod dbscan;
pub mod gray_scott;
pub mod io_baselines;
pub mod kmeans;
pub mod loader;
pub mod point;
pub mod rf;
pub mod vecgen;
pub mod verify;

pub use point::Point3D;
