//! Gray-Scott on MegaMmap.
//!
//! The U and V concentration grids are shared vectors (double-buffered
//! across steps). Each process owns a z-slab (`Pgas`); writes use the
//! Write-Local policy (non-overlapping slabs), reads of the previous step's
//! grid — including the two neighbour halo planes — use Read-Only
//! transactions. Checkpoints are the vectors' own backends: `flush_async`
//! stages dirty pages to storage *while the next step computes*, which is
//! exactly the overlap that wins Fig. 6/7.

use megammap::prelude::*;
use megammap_cluster::comm::ReduceOp;
use megammap_cluster::Proc;

use super::{step_plane, GsConfig, GsResult};

/// A MegaMmap Gray-Scott job.
pub struct MegaGs<'a> {
    /// The deployed runtime.
    pub rt: &'a Runtime,
    /// Simulation parameters.
    pub cfg: GsConfig,
    /// pcache bound per vector per process.
    pub pcache_bytes: u64,
    /// Base URL for the persistent grids (e.g. `obj://gs/run1`); `None`
    /// runs on volatile `mem://` vectors with no persistence.
    pub ckpt_url: Option<String>,
    /// Unique run tag so concurrent tests don't collide on `mem://` keys.
    pub tag: String,
}

fn field_urls(job: &MegaGs<'_>) -> [[String; 2]; 2] {
    let base = match &job.ckpt_url {
        Some(u) => u.clone(),
        None => format!("mem://gs-{}", job.tag),
    };
    [[format!("{base}.u0"), format!("{base}.u1")], [format!("{base}.v0"), format!("{base}.v1")]]
}

/// Run the simulation; every process calls this (SPMD).
pub fn run(p: &Proc, job: &MegaGs<'_>) -> GsResult {
    let cfg = job.cfg;
    let l = cfg.l;
    let plane = l * l;
    let world = p.world();
    let urls = field_urls(job);
    let open = |url: &str| -> MmVec<f64> {
        MmVec::open(job.rt, p, url, VecOptions::new().len(cfg.cells()).pcache(job.pcache_bytes))
            .expect("open field vector")
    };
    let u = [open(&urls[0][0]), open(&urls[0][1])];
    let v = [open(&urls[1][0]), open(&urls[1][1])];
    let (z0, z1) = cfg.slab(p.rank(), p.nprocs());

    // ---- initial condition -------------------------------------------------
    {
        let txu = u[0]
            .tx(p, TxKind::seq((z0 * plane) as u64, ((z1 - z0) * plane) as u64), Access::WriteLocal)
            .expect("begin init u tx");
        let txv = v[0]
            .tx(p, TxKind::seq((z0 * plane) as u64, ((z1 - z0) * plane) as u64), Access::WriteLocal)
            .expect("begin init v tx");
        let mut up = vec![0.0f64; plane];
        let mut vp = vec![0.0f64; plane];
        for z in z0..z1 {
            for y in 0..l {
                for x in 0..l {
                    let (iu, iv) = cfg.initial(x, y, z);
                    up[y * l + x] = iu;
                    vp[y * l + x] = iv;
                }
            }
            u[0].write_slice(p, (z * plane) as u64, &up).expect("init u");
            v[0].write_slice(p, (z * plane) as u64, &vp).expect("init v");
        }
        txu.end().expect("end init u tx");
        txv.end().expect("end init v tx");
    }
    world.barrier(p);

    // ---- time stepping ------------------------------------------------------
    let slab_planes = z1 - z0;
    let read_plane = |vec: &MmVec<f64>, z: usize, buf: &mut Vec<f64>| {
        let z = (z + l) % l; // periodic in z
        vec.read_into(p, (z * plane) as u64, buf).expect("read plane");
    };
    for step in 0..cfg.steps {
        let cur = step % 2;
        let nxt = 1 - cur;
        // The bulk of the sweep is sequential over the owned slab; the two
        // halo planes are isolated extra faults. Declaring the slab span
        // lets the prefetcher run ahead of the stencil correctly.
        let span = TxKind::seq((z0 * plane) as u64, (slab_planes * plane) as u64);
        let tx_ur = u[cur].tx(p, span, Access::ReadOnly).expect("begin u read tx");
        let tx_vr = v[cur].tx(p, span, Access::ReadOnly).expect("begin v read tx");
        let wspan = TxKind::seq((z0 * plane) as u64, (slab_planes * plane) as u64);
        let tx_uw = u[nxt].tx(p, wspan, Access::WriteLocal).expect("begin u write tx");
        let tx_vw = v[nxt].tx(p, wspan, Access::WriteLocal).expect("begin v write tx");

        // Rolling window of three planes per field.
        let mut ub = [vec![0.0f64; plane], vec![0.0f64; plane], vec![0.0f64; plane]];
        let mut vb = [vec![0.0f64; plane], vec![0.0f64; plane], vec![0.0f64; plane]];
        read_plane(&u[cur], z0 + l - 1, &mut ub[0]);
        read_plane(&u[cur], z0, &mut ub[1]);
        read_plane(&v[cur], z0 + l - 1, &mut vb[0]);
        read_plane(&v[cur], z0, &mut vb[1]);
        let mut uo = vec![0.0f64; plane];
        let mut vo = vec![0.0f64; plane];
        for z in z0..z1 {
            read_plane(&u[cur], z + 1, &mut ub[2]);
            read_plane(&v[cur], z + 1, &mut vb[2]);
            step_plane(&cfg, &ub[0], &ub[1], &ub[2], &vb[0], &vb[1], &vb[2], &mut uo, &mut vo);
            p.compute_flops(GsConfig::FLOPS_PER_CELL * plane as u64);
            u[nxt].write_slice(p, (z * plane) as u64, &uo).expect("write u");
            v[nxt].write_slice(p, (z * plane) as u64, &vo).expect("write v");
            ub.rotate_left(1);
            vb.rotate_left(1);
        }
        tx_ur.end().expect("end u read tx");
        tx_vr.end().expect("end v read tx");
        tx_uw.end().expect("end u write tx");
        tx_vw.end().expect("end v write tx");
        world.barrier(p);

        // Checkpoint: stage the fresh grid asynchronously and keep going.
        if job.ckpt_url.is_some()
            && cfg.plotgap > 0
            && (step + 1) % cfg.plotgap == 0
            && p.rank() == 0
        {
            u[nxt].flush_async(p).expect("stage u");
            v[nxt].flush_async(p).expect("stage v");
        }
    }

    // ---- final persistence + checksum ---------------------------------------
    let last = cfg.steps % 2;
    if job.ckpt_url.is_some() && p.rank() == 0 {
        u[last].flush_async(p).expect("final stage u");
        v[last].flush_async(p).expect("final stage v");
        u[last].drain(p);
        v[last].drain(p);
    }
    let mut sums = [0.0f64; 2];
    {
        let span = TxKind::seq((z0 * plane) as u64, (slab_planes * plane) as u64);
        let txu = u[last].tx(p, span, Access::ReadOnly).expect("begin sum u tx");
        let txv = v[last].tx(p, span, Access::ReadOnly).expect("begin sum v tx");
        let mut buf = vec![0.0f64; plane];
        for z in z0..z1 {
            u[last].read_into(p, (z * plane) as u64, &mut buf).expect("sum u");
            sums[0] += buf.iter().sum::<f64>();
            v[last].read_into(p, (z * plane) as u64, &mut buf).expect("sum v");
            sums[1] += buf.iter().sum::<f64>();
        }
        txu.end().expect("end sum u tx");
        txv.end().expect("end sum v tx");
    }
    let sums = world.allreduce_f64_shared(p, &sums, ReduceOp::Sum);
    GsResult { sum_u: sums[0], sum_v: sums[1] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megammap_cluster::{Cluster, ClusterSpec};

    fn fixture(nodes: usize, procs: usize) -> (Cluster, Runtime) {
        let cluster = Cluster::new(ClusterSpec::new(nodes, procs).dram_per_node(1 << 30));
        let rt = Runtime::new(&cluster, RuntimeConfig::default().with_page_size(8192));
        (cluster, rt)
    }

    /// Full-grid reference evolution for `steps` steps.
    fn reference(cfg: &GsConfig) -> GsResult {
        let l = cfg.l;
        let n = l * l * l;
        let mut u = vec![0.0f64; n];
        let mut v = vec![0.0f64; n];
        for z in 0..l {
            for y in 0..l {
                for x in 0..l {
                    let (iu, iv) = cfg.initial(x, y, z);
                    u[(z * l + y) * l + x] = iu;
                    v[(z * l + y) * l + x] = iv;
                }
            }
        }
        for _ in 0..cfg.steps {
            let (nu, nv) =
                crate::verify::ref_gray_scott_step(&u, &v, l, cfg.du, cfg.dv, cfg.f, cfg.k, cfg.dt);
            u = nu;
            v = nv;
        }
        GsResult { sum_u: u.iter().sum(), sum_v: v.iter().sum() }
    }

    #[test]
    fn matches_full_grid_reference() {
        let cfg = GsConfig::new(12, 4);
        let (cluster, rt) = fixture(2, 2);
        let rt2 = rt.clone();
        let (outs, _) = cluster.run(move |p| {
            run(
                p,
                &MegaGs {
                    rt: &rt2,
                    cfg,
                    pcache_bytes: 1 << 20,
                    ckpt_url: None,
                    tag: "ref-match".into(),
                },
            )
        });
        let expect = reference(&cfg);
        for o in &outs {
            assert!(
                (o.sum_u - expect.sum_u).abs() < 1e-9 && (o.sum_v - expect.sum_v).abs() < 1e-9,
                "got {o:?} want {expect:?}"
            );
        }
        // The reaction actually progressed (V is alive and U was consumed
        // somewhere).
        assert!(expect.sum_v > 0.0);
        assert!(expect.sum_u < (12.0f64).powi(3));
    }

    #[test]
    fn checkpoints_persist_the_grid() {
        let cfg = GsConfig::new(8, 2).plotgap(1);
        let (cluster, rt) = fixture(1, 2);
        let rt2 = rt.clone();
        cluster.run(move |p| {
            run(
                p,
                &MegaGs {
                    rt: &rt2,
                    cfg,
                    pcache_bytes: 1 << 20,
                    ckpt_url: Some("obj://gs/run".into()),
                    tag: "ckpt".into(),
                },
            );
            p.world().barrier(p);
            if p.rank() == 0 {
                rt2.shutdown(p.now()).unwrap();
            }
        });
        // The final U grid is on the backend with the right size.
        let url = megammap_formats::DataUrl::parse("obj://gs/run.u0").unwrap();
        let obj = rt.backends().open(&url).unwrap();
        assert_eq!(obj.len().unwrap(), cfg.field_bytes());
        // It contains plausible concentrations (u in (0, 1]).
        let bytes = megammap_formats::object::read_all(obj.as_ref()).unwrap();
        let u0 = f64::from_le_bytes(bytes[..8].try_into().unwrap());
        assert!(u0 > 0.0 && u0 <= 1.0, "u[0] = {u0}");
    }

    #[test]
    fn decomposition_invariant_to_process_count() {
        let cfg = GsConfig::new(10, 3);
        let mut results = Vec::new();
        for procs in [1usize, 2, 5] {
            let (cluster, rt) = fixture(1, procs);
            let rt2 = rt.clone();
            let (outs, _) = cluster.run(move |p| {
                run(
                    p,
                    &MegaGs {
                        rt: &rt2,
                        cfg,
                        pcache_bytes: 1 << 20,
                        ckpt_url: None,
                        tag: format!("dec{procs}"),
                    },
                )
            });
            results.push(outs[0].clone());
        }
        // Stencil math is independent of the slab decomposition; sums may
        // differ only by f64 reduction order across slabs.
        for r in &results[1..] {
            assert!((r.sum_u - results[0].sum_u).abs() < 1e-8, "{r:?} vs {:?}", results[0]);
            assert!((r.sum_v - results[0].sum_v).abs() < 1e-8);
        }
    }
}
