//! The Gray-Scott reaction-diffusion simulation (paper §IV).
//!
//! "Initially, a grid of volume L³ is defined and evenly subdivided among
//! each process. Each cell in the grid contains the concentrations of U and
//! V at time step T. At each iteration, the concentrations are updated and
//! exchanged between processes ... After a certain number of iterations
//! (plotgap), the grid of size O(L³) is checkpointed."
//!
//! Both variants use the identical 7-point-stencil arithmetic (1-D slab
//! decomposition along z, periodic boundaries) so their outputs agree
//! bit-for-bit and can be checked against [`crate::verify`]'s full-grid
//! reference step.

pub mod mega;
pub mod mpi;

/// Simulation parameters (Pearson's classic coefficients).
#[derive(Debug, Clone, Copy)]
pub struct GsConfig {
    /// Grid side length (the paper's `L`).
    pub l: usize,
    /// Time steps to run.
    pub steps: usize,
    /// Checkpoint every `plotgap` steps; 0 = only a final flush.
    pub plotgap: usize,
    /// Diffusion rate of U.
    pub du: f64,
    /// Diffusion rate of V.
    pub dv: f64,
    /// Feed rate.
    pub f: f64,
    /// Kill rate.
    pub k: f64,
    /// Time step.
    pub dt: f64,
}

impl GsConfig {
    /// Default coefficients with a given grid size and step count.
    pub fn new(l: usize, steps: usize) -> Self {
        Self { l, steps, plotgap: 0, du: 0.2, dv: 0.1, f: 0.025, k: 0.055, dt: 0.5 }
    }

    /// Set the checkpoint period.
    pub fn plotgap(mut self, plotgap: usize) -> Self {
        self.plotgap = plotgap;
        self
    }

    /// Total cells.
    pub fn cells(&self) -> u64 {
        (self.l * self.l * self.l) as u64
    }

    /// Grid bytes for one field (f64).
    pub fn field_bytes(&self) -> u64 {
        self.cells() * 8
    }

    /// Effective compute cost per cell per step, in flop-equivalents at the
    /// scalar CPU model's rate. The raw arithmetic is ~30 flops (two
    /// 7-point Laplacians plus reaction terms), but a naive 3-D stencil
    /// over two f64 fields is memory-latency-bound: strided z-neighbour
    /// access misses cache, making the observed cost on a Xeon-4114-class
    /// core ~120 ns/cell — which is what this constant reproduces (both
    /// the MegaMmap and MPI variants charge it identically).
    pub const FLOPS_PER_CELL: u64 = 240;

    /// The initial condition: `u = 1, v = 0` everywhere except a seeded
    /// cube in the grid center where `u = 0.5, v = 0.25`.
    pub fn initial(&self, x: usize, y: usize, z: usize) -> (f64, f64) {
        let l = self.l;
        let lo = l / 2 - l / 8;
        let hi = l / 2 + l / 8;
        if (lo..hi).contains(&x) && (lo..hi).contains(&y) && (lo..hi).contains(&z) {
            (0.5, 0.25)
        } else {
            (1.0, 0.0)
        }
    }

    /// The z-slab `[z0, z1)` owned by `rank` of `nprocs`.
    pub fn slab(&self, rank: usize, nprocs: usize) -> (usize, usize) {
        (self.l * rank / nprocs, self.l * (rank + 1) / nprocs)
    }
}

/// Outcome of a Gray-Scott run.
#[derive(Debug, Clone, PartialEq)]
pub struct GsResult {
    /// Global sum of U (mass-like invariant for verification).
    pub sum_u: f64,
    /// Global sum of V.
    pub sum_v: f64,
}

/// Compute one output plane `z` from the three input planes (below, mid,
/// above), each of `l × l` cells — shared by both variants so the
/// arithmetic is identical.
#[allow(clippy::too_many_arguments)]
pub(crate) fn step_plane(
    cfg: &GsConfig,
    u_below: &[f64],
    u_mid: &[f64],
    u_above: &[f64],
    v_below: &[f64],
    v_mid: &[f64],
    v_above: &[f64],
    u_out: &mut [f64],
    v_out: &mut [f64],
) {
    let l = cfg.l;
    for y in 0..l {
        for x in 0..l {
            let c = y * l + x;
            let xm = y * l + (x + l - 1) % l;
            let xp = y * l + (x + 1) % l;
            let ym = ((y + l - 1) % l) * l + x;
            let yp = ((y + 1) % l) * l + x;
            let lap_u = u_mid[xm] + u_mid[xp] + u_mid[ym] + u_mid[yp] + u_below[c] + u_above[c]
                - 6.0 * u_mid[c];
            let lap_v = v_mid[xm] + v_mid[xp] + v_mid[ym] + v_mid[yp] + v_below[c] + v_above[c]
                - 6.0 * v_mid[c];
            let uvv = u_mid[c] * v_mid[c] * v_mid[c];
            u_out[c] = u_mid[c] + cfg.dt * (cfg.du * lap_u - uvv + cfg.f * (1.0 - u_mid[c]));
            v_out[c] = v_mid[c] + cfg.dt * (cfg.dv * lap_v + uvv - (cfg.f + cfg.k) * v_mid[c]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slabs_tile_the_grid() {
        let cfg = GsConfig::new(10, 1);
        let mut covered = 0;
        for r in 0..3 {
            let (z0, z1) = cfg.slab(r, 3);
            covered += z1 - z0;
        }
        assert_eq!(covered, 10);
        assert_eq!(cfg.slab(0, 3).0, 0);
        assert_eq!(cfg.slab(2, 3).1, 10);
    }

    #[test]
    fn initial_condition_has_a_seed() {
        let cfg = GsConfig::new(16, 1);
        assert_eq!(cfg.initial(8, 8, 8), (0.5, 0.25));
        assert_eq!(cfg.initial(0, 0, 0), (1.0, 0.0));
    }

    #[test]
    fn step_plane_matches_reference_full_step() {
        let cfg = GsConfig::new(6, 1);
        let l = cfg.l;
        let n = l * l * l;
        let mut u = vec![1.0f64; n];
        let mut v = vec![0.0f64; n];
        for z in 0..l {
            for y in 0..l {
                for x in 0..l {
                    let (iu, iv) = cfg.initial(x, y, z);
                    u[(z * l + y) * l + x] = iu;
                    v[(z * l + y) * l + x] = iv;
                }
            }
        }
        let (ru, rv) =
            crate::verify::ref_gray_scott_step(&u, &v, l, cfg.du, cfg.dv, cfg.f, cfg.k, cfg.dt);
        // Plane-wise computation must agree exactly.
        let plane = |g: &Vec<f64>, z: usize| g[z * l * l..(z + 1) * l * l].to_vec();
        for z in 0..l {
            let zm = (z + l - 1) % l;
            let zp = (z + 1) % l;
            let mut uo = vec![0.0; l * l];
            let mut vo = vec![0.0; l * l];
            step_plane(
                &cfg,
                &plane(&u, zm),
                &plane(&u, z),
                &plane(&u, zp),
                &plane(&v, zm),
                &plane(&v, z),
                &plane(&v, zp),
                &mut uo,
                &mut vo,
            );
            assert_eq!(uo, plane(&ru, z), "u plane {z}");
            assert_eq!(vo, plane(&rv, z), "v plane {z}");
        }
    }
}
