//! Gray-Scott in traditional MPI style — the paper's baseline.
//!
//! The entire slab (two fields, double-buffered: four arrays) lives in
//! process-local DRAM, allocated against the node's memory ledger — which
//! is why this variant "crashes due to memory overutilization" past the
//! Fig. 6 resolution limit while MegaMmap keeps going. Halo planes are
//! exchanged with explicit sends/receives; checkpoints go through one of
//! the [`IoBackend`](crate::io_baselines::IoBackend) systems and happen in
//! distinct, synchronous I/O phases.

use megammap_cluster::comm::ReduceOp;
use megammap_cluster::{OomError, Proc};

use super::{step_plane, GsConfig, GsResult};
use crate::io_baselines::IoBackend;

/// Halo-exchange message tags.
const TAG_UP: u64 = 1;
const TAG_DOWN: u64 = 2;

/// An MPI-style Gray-Scott job.
pub struct MpiGs {
    /// Simulation parameters.
    pub cfg: GsConfig,
    /// Checkpoint I/O system (`None` = no checkpointing at all).
    pub io: Option<IoBackend>,
    /// Write a final checkpoint even when `plotgap == 0` (Fig. 6 produces
    /// the dataset once at the end).
    pub final_ckpt: bool,
}

/// Run the baseline; every process calls this (SPMD). Fails with a
/// simulated OOM kill when the slab does not fit node memory.
pub fn run(p: &Proc, job: &MpiGs) -> Result<GsResult, OomError> {
    let cfg = job.cfg;
    let l = cfg.l;
    let plane = l * l;
    let world = p.world();
    let nprocs = p.nprocs();
    let (z0, z1) = cfg.slab(p.rank(), nprocs);
    let slab = z1 - z0;

    // The four field arrays plus four halo planes, charged to node DRAM.
    let bytes = (4 * slab * plane + 4 * plane) as u64 * 8;
    let mem = p.alloc(bytes);
    // OOM is a collective fate: if any rank's allocation was killed, every
    // rank must abort (otherwise survivors deadlock in the halo exchange
    // waiting for the dead rank — exactly what mpirun's abort handles).
    let ok = world.allreduce_u64_shared(p, &[u64::from(mem.is_ok())], ReduceOp::Min)[0];
    if ok == 0 {
        return Err(match mem {
            Err(e) => e,
            Ok(_) => OomError { node: p.node(), requested: bytes, available: 0 },
        });
    }
    let _mem = mem.expect("checked collectively");
    let mut u = vec![0.0f64; slab * plane];
    let mut v = vec![0.0f64; slab * plane];
    let mut un = vec![0.0f64; slab * plane];
    let mut vn = vec![0.0f64; slab * plane];
    for z in z0..z1 {
        for y in 0..l {
            for x in 0..l {
                let (iu, iv) = cfg.initial(x, y, z);
                u[(z - z0) * plane + y * l + x] = iu;
                v[(z - z0) * plane + y * l + x] = iv;
            }
        }
    }
    world.barrier(p);

    let up_rank = (p.rank() + 1) % nprocs;
    let down_rank = (p.rank() + nprocs - 1) % nprocs;
    let plane_bytes = (plane * 8) as u64;
    let mut ckpts = 0usize;
    for step in 0..cfg.steps {
        // ---- halo exchange (both fields, both directions) ----------------
        let (u_below, u_above, v_below, v_above);
        if nprocs == 1 {
            u_below = u[(slab - 1) * plane..].to_vec();
            u_above = u[..plane].to_vec();
            v_below = v[(slab - 1) * plane..].to_vec();
            v_above = v[..plane].to_vec();
        } else {
            // Send my top plane up and my bottom plane down.
            let tag = |t: u64| (step as u64) * 8 + t;
            p.send(
                up_rank,
                tag(TAG_UP),
                (u[(slab - 1) * plane..].to_vec(), v[(slab - 1) * plane..].to_vec()),
                2 * plane_bytes,
            );
            p.send(
                down_rank,
                tag(TAG_DOWN),
                (u[..plane].to_vec(), v[..plane].to_vec()),
                2 * plane_bytes,
            );
            let (ub, vb): (Vec<f64>, Vec<f64>) = p.recv(down_rank, tag(TAG_UP));
            let (ua, va): (Vec<f64>, Vec<f64>) = p.recv(up_rank, tag(TAG_DOWN));
            u_below = ub;
            v_below = vb;
            u_above = ua;
            v_above = va;
        }

        // ---- stencil -------------------------------------------------------
        let mut uo = vec![0.0f64; plane];
        let mut vo = vec![0.0f64; plane];
        for zi in 0..slab {
            let below_u = if zi == 0 { &u_below[..] } else { &u[(zi - 1) * plane..zi * plane] };
            let above_u =
                if zi + 1 == slab { &u_above[..] } else { &u[(zi + 1) * plane..(zi + 2) * plane] };
            let below_v = if zi == 0 { &v_below[..] } else { &v[(zi - 1) * plane..zi * plane] };
            let above_v =
                if zi + 1 == slab { &v_above[..] } else { &v[(zi + 1) * plane..(zi + 2) * plane] };
            step_plane(
                &cfg,
                below_u,
                &u[zi * plane..(zi + 1) * plane],
                above_u,
                below_v,
                &v[zi * plane..(zi + 1) * plane],
                above_v,
                &mut uo,
                &mut vo,
            );
            p.compute_flops(GsConfig::FLOPS_PER_CELL * plane as u64);
            // Memory traffic of the stencil: both fields read + written.
            p.stream_bytes(4 * plane as u64 * 8);
            un[zi * plane..(zi + 1) * plane].copy_from_slice(&uo);
            vn[zi * plane..(zi + 1) * plane].copy_from_slice(&vo);
        }
        std::mem::swap(&mut u, &mut un);
        std::mem::swap(&mut v, &mut vn);
        world.barrier(p);

        // ---- checkpoint phase (synchronous, distinct from compute) --------
        if let Some(io) = &job.io {
            if cfg.plotgap > 0 && (step + 1) % cfg.plotgap == 0 {
                io.checkpoint(p, (2 * slab * plane * 8) as u64);
                ckpts += 1;
                world.barrier(p);
            }
        }
    }
    if let Some(io) = &job.io {
        if job.final_ckpt && ckpts == 0 {
            io.checkpoint(p, (2 * slab * plane * 8) as u64);
        }
        io.finalize(p);
        world.barrier(p);
    }

    // Sum plane by plane so the fold order matches the MegaMmap variant
    // exactly (bitwise-comparable checksums).
    let mut local = [0.0f64; 2];
    for zi in 0..slab {
        local[0] += u[zi * plane..(zi + 1) * plane].iter().sum::<f64>();
        local[1] += v[zi * plane..(zi + 1) * plane].iter().sum::<f64>();
    }
    let sums = world.allreduce_f64_shared(p, &local, ReduceOp::Sum);
    Ok(GsResult { sum_u: sums[0], sum_v: sums[1] })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io_baselines::IoKind;
    use megammap_cluster::{Cluster, ClusterSpec};
    use megammap_sim::MIB;

    #[test]
    fn mpi_matches_mega_bitwise() {
        let cfg = GsConfig::new(12, 4);
        let cluster = Cluster::new(ClusterSpec::new(2, 2).dram_per_node(1 << 30));
        let (mpi_outs, _) =
            cluster.run(move |p| run(p, &MpiGs { cfg, io: None, final_ckpt: false }).unwrap());
        let cluster2 = Cluster::new(ClusterSpec::new(2, 2).dram_per_node(1 << 30));
        let rt = megammap::Runtime::new(
            &cluster2,
            megammap::RuntimeConfig::default().with_page_size(8192),
        );
        let (mega_outs, _) = cluster2.run(move |p| {
            crate::gray_scott::mega::run(
                p,
                &crate::gray_scott::mega::MegaGs {
                    rt: &rt,
                    cfg,
                    pcache_bytes: 1 << 20,
                    ckpt_url: None,
                    tag: "vs-mpi".into(),
                },
            )
        });
        assert_eq!(mpi_outs[0].sum_u.to_bits(), mega_outs[0].sum_u.to_bits());
        assert_eq!(mpi_outs[0].sum_v.to_bits(), mega_outs[0].sum_v.to_bits());
    }

    #[test]
    fn ooms_when_slab_exceeds_node_memory() {
        // L=32 grid: 4 fields x 32^3 x 8 B = 1 MiB per proc; give the node
        // half that.
        let cfg = GsConfig::new(32, 1);
        let cluster = Cluster::new(ClusterSpec::new(1, 1).dram_per_node(MIB / 2));
        let (outs, _) =
            cluster.run(move |p| run(p, &MpiGs { cfg, io: None, final_ckpt: false }).is_err());
        assert!(outs[0], "the MPI variant must OOM, as in Fig. 6");
    }

    #[test]
    fn checkpoint_phases_slow_the_run() {
        let cfg = GsConfig::new(16, 4).plotgap(1);
        let mk = |io: Option<IoBackend>, cfg: GsConfig| {
            let cluster = Cluster::new(ClusterSpec::new(1, 2).dram_per_node(1 << 30));
            let (outs, rep) = cluster
                .run(move |p| run(p, &MpiGs { cfg, io: io.clone(), final_ckpt: false }).unwrap());
            (outs[0].clone(), rep.makespan_ns)
        };
        let (r_none, t_none) = mk(None, GsConfig::new(16, 4));
        let (r_ofs, t_ofs) = mk(Some(IoBackend::with_defaults(IoKind::OrangeFs, 1)), cfg);
        let (_r_h, t_h) = mk(Some(IoBackend::with_defaults(IoKind::Hermes, 1)), cfg);
        assert_eq!(r_none.sum_u.to_bits(), r_ofs.sum_u.to_bits(), "I/O must not change physics");
        assert!(t_ofs > t_none, "sync checkpoints cost time");
        assert!(t_h < t_ofs, "hermes buffering beats sync PFS: {t_h} vs {t_ofs}");
    }
}
