//! 3-D particle samples.

use megammap::impl_element_struct;

/// A 3-D point (particle position), the record type of the clustering
/// workloads — the paper's `Point3D`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point3D {
    /// X coordinate.
    pub x: f32,
    /// Y coordinate.
    pub y: f32,
    /// Z coordinate.
    pub z: f32,
}

impl_element_struct!(Point3D { x: f32, y: f32, z: f32 });

impl Point3D {
    /// Construct from coordinates.
    pub fn new(x: f32, y: f32, z: f32) -> Self {
        Self { x, y, z }
    }

    /// Squared euclidean distance to `other`.
    #[inline]
    pub fn dist2(&self, other: &Point3D) -> f32 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        dx * dx + dy * dy + dz * dz
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Point3D) -> f32 {
        self.dist2(other).sqrt()
    }

    /// Component by axis index (0 = x, 1 = y, 2 = z).
    #[inline]
    pub fn axis(&self, a: usize) -> f32 {
        match a {
            0 => self.x,
            1 => self.y,
            _ => self.z,
        }
    }

    /// Elementwise addition (centroid accumulation).
    pub fn add(&self, o: &Point3D) -> Point3D {
        Point3D::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }

    /// Scale by `s`.
    pub fn scale(&self, s: f32) -> Point3D {
        Point3D::new(self.x * s, self.y * s, self.z * s)
    }

    /// Index of the nearest centroid plus the squared distance to it.
    pub fn nearest_centroid(&self, ks: &[Point3D]) -> (usize, f32) {
        let mut best = (0usize, f32::INFINITY);
        for (i, k) in ks.iter().enumerate() {
            let d = self.dist2(k);
            if d < best.1 {
                best = (i, d);
            }
        }
        best
    }

    /// Approximate flops of one `nearest_centroid` call over `k` centroids
    /// (used to charge virtual compute).
    pub const fn nearest_flops(k: usize) -> u64 {
        // 3 subs + 3 muls + 2 adds + 1 cmp per centroid.
        9 * k as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megammap::element::Element;

    #[test]
    fn element_round_trip() {
        let p = Point3D::new(1.5, -2.0, 3.25);
        let mut buf = [0u8; 12];
        p.write_to(&mut buf);
        assert_eq!(Point3D::read_from(&buf), p);
        assert_eq!(Point3D::SIZE, 12);
    }

    #[test]
    fn distances() {
        let a = Point3D::new(0.0, 0.0, 0.0);
        let b = Point3D::new(3.0, 4.0, 0.0);
        assert_eq!(a.dist2(&b), 25.0);
        assert_eq!(a.dist(&b), 5.0);
    }

    #[test]
    fn nearest_centroid_picks_min() {
        let ks = [Point3D::new(0.0, 0.0, 0.0), Point3D::new(10.0, 0.0, 0.0)];
        let (i, d2) = Point3D::new(9.0, 0.0, 0.0).nearest_centroid(&ks);
        assert_eq!(i, 1);
        assert_eq!(d2, 1.0);
    }

    #[test]
    fn axis_accessor() {
        let p = Point3D::new(1.0, 2.0, 3.0);
        assert_eq!(p.axis(0), 1.0);
        assert_eq!(p.axis(1), 2.0);
        assert_eq!(p.axis(2), 3.0);
    }

    #[test]
    fn centroid_math() {
        let s = Point3D::new(2.0, 4.0, 6.0).add(&Point3D::new(2.0, 0.0, 2.0)).scale(0.5);
        assert_eq!(s, Point3D::new(2.0, 2.0, 4.0));
    }
}
