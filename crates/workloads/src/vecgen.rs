//! Seeded high-dimensional vector datasets for the ANN search workload.
//!
//! The inference-serving shape ROADMAP item 2 targets: a corpus of D-dim
//! embeddings drawn from a Gaussian mixture (queries are perturbed corpus
//! points, so every query has unambiguous near neighbours), deterministic
//! in the seed. Both `mm_ann` and the PQ proptests consume this generator,
//! so the recall numbers in BENCH_*.json and the reconstruction-error
//! bounds pin the *same* distribution.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct VecGenParams {
    /// Corpus size (number of base vectors).
    pub n: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Mixture components (natural cluster count; IVF lists follow it).
    pub clusters: usize,
    /// RNG seed.
    pub seed: u64,
    /// Cluster standard deviation.
    pub sigma: f32,
    /// Component-center spread (centers drawn uniform in `[0, spread)^dim`).
    pub spread: f32,
}

impl Default for VecGenParams {
    fn default() -> Self {
        Self { n: 8192, dim: 64, clusters: 32, seed: 42, sigma: 0.35, spread: 10.0 }
    }
}

/// A generated corpus: `n` base vectors stored row-major plus the
/// ground-truth mixture component per vector.
#[derive(Debug, Clone)]
pub struct VecDataset {
    /// Row-major `n x dim` base vectors.
    pub data: Vec<f32>,
    /// Dimensionality.
    pub dim: usize,
    /// Mixture component per vector.
    pub labels: Vec<u32>,
}

impl VecDataset {
    /// Vector `i` as a slice.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// One standard Gaussian sample (Box-Muller, matching `datagen`'s idiom).
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(1e-6..1.0f32);
    let u2: f32 = rng.gen_range(0.0..1.0f32);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Generate a corpus. Deterministic in the seed.
pub fn generate(params: VecGenParams) -> VecDataset {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let centers: Vec<f32> =
        (0..params.clusters * params.dim).map(|_| rng.gen_range(0.0..params.spread)).collect();
    let mut data = Vec::with_capacity(params.n * params.dim);
    let mut labels = Vec::with_capacity(params.n);
    for i in 0..params.n {
        let c = i % params.clusters;
        for d in 0..params.dim {
            data.push(centers[c * params.dim + d] + gaussian(&mut rng) * params.sigma);
        }
        labels.push(c as u32);
    }
    VecDataset { data, dim: params.dim, labels }
}

/// Derive `k` query vectors from the corpus: pick seeded corpus rows and
/// perturb each coordinate with a small Gaussian (so the perturbed source
/// row stays among the true near neighbours, making recall meaningful).
pub fn queries(ds: &VecDataset, k: usize, seed: u64, jitter: f32) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(k * ds.dim);
    for _ in 0..k {
        let src = rng.gen_range(0..ds.len());
        for d in 0..ds.dim {
            out.push(ds.row(src)[d] + gaussian(&mut rng) * jitter);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = generate(VecGenParams { n: 128, ..Default::default() });
        let b = generate(VecGenParams { n: 128, ..Default::default() });
        assert_eq!(a.data, b.data);
        let c = generate(VecGenParams { n: 128, seed: 7, ..Default::default() });
        assert_ne!(a.data, c.data);
    }

    #[test]
    fn queries_track_corpus_rows() {
        let ds = generate(VecGenParams { n: 256, dim: 16, ..Default::default() });
        let qs = queries(&ds, 8, 99, 0.05);
        assert_eq!(qs.len(), 8 * 16);
        // Every query must sit close to at least one corpus row.
        for q in qs.chunks(16) {
            let best = (0..ds.len())
                .map(|i| ds.row(i).iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum::<f32>())
                .fold(f32::INFINITY, f32::min);
            assert!(best < 1.0, "query strayed {best} from the corpus");
        }
    }
}
