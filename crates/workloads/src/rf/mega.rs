//! Random Forest on MegaMmap.
//!
//! The feature vector and the label vector (produced by the KMeans stage)
//! are shared MegaMmap vectors; every level of tree construction streams
//! the process's PGAS slice through read-only transactions. The bagging
//! subsample is a seeded pseudo-random subset — the access-intent
//! machinery the paper's `RandTx` conveys (the seed determines exactly
//! which samples each pass touches).

use megammap::prelude::*;
use megammap_cluster::comm::ReduceOp;
use megammap_cluster::Proc;

use super::{evaluate, train_forest, RfConfig, RfEnv, RfResult};
use crate::point::Point3D;

const CHUNK: usize = 1024;

/// A MegaMmap Random-Forest job.
pub struct MegaRf<'a> {
    /// The deployed runtime.
    pub rt: &'a Runtime,
    /// Feature-vector URL (`Point3D` records).
    pub points_url: String,
    /// Label-vector URL (`u32` records, e.g. the KMeans assignments).
    pub labels_url: String,
    /// Parameters.
    pub cfg: RfConfig,
    /// pcache bound per vector per process.
    pub pcache_bytes: u64,
}

struct MegaEnv<'a, 'p> {
    p: &'p Proc,
    points: MmVec<Point3D>,
    labels: MmVec<u32>,
    range: std::ops::Range<u64>,
    _job: &'a MegaRf<'a>,
}

impl RfEnv for MegaEnv<'_, '_> {
    fn scan(&mut self, f: &mut dyn FnMut(u64, &Point3D, u32)) {
        let p = self.p;
        let (s, e) = (self.range.start, self.range.end);
        // Streamed sequential read-only sweep over the PGAS slice, with the
        // seeded subset semantics conveyed by the bagging predicate.
        let ptx =
            self.points.tx(p, TxKind::seq(s, e - s), Access::ReadOnly).expect("begin points tx");
        let ltx =
            self.labels.tx(p, TxKind::seq(s, e - s), Access::ReadOnly).expect("begin labels tx");
        let mut pbuf = vec![Point3D::default(); CHUNK];
        let mut lbuf = vec![0u32; CHUNK];
        let mut i = s;
        while i < e {
            let n = CHUNK.min((e - i) as usize);
            self.points.read_into(p, i, &mut pbuf[..n]).expect("read points");
            self.labels.read_into(p, i, &mut lbuf[..n]).expect("read labels");
            for k in 0..n {
                f(i + k as u64, &pbuf[k], lbuf[k]);
            }
            i += n as u64;
        }
        ptx.end().expect("end points tx");
        ltx.end().expect("end labels tx");
    }

    fn allreduce_sum(&self, vals: &[u64]) -> Vec<u64> {
        self.p.world().allreduce_u64(self.p, vals, ReduceOp::Sum)
    }

    fn allgather_samples(&self, vals: Vec<(u32, u64, Point3D)>) -> Vec<(u32, u64, Point3D)> {
        self.p.world().allgather(self.p, vals, 12 + Point3D::SIZE as u64)
    }

    fn charge_flops(&self, flops: u64) {
        self.p.compute_flops(flops);
    }
}

/// Run Random Forest; every process calls this (SPMD).
pub fn run(p: &Proc, job: &MegaRf<'_>) -> RfResult {
    let points: MmVec<Point3D> =
        MmVec::open(job.rt, p, &job.points_url, VecOptions::new().pcache(job.pcache_bytes))
            .expect("open points");
    let labels: MmVec<u32> =
        MmVec::open(job.rt, p, &job.labels_url, VecOptions::new().pcache(job.pcache_bytes))
            .expect("open labels");
    assert_eq!(points.len(), labels.len(), "points/labels length mismatch");
    points.pgas(p, p.rank(), p.nprocs());
    let range = points.local_range();
    let mut env = MegaEnv { p, points, labels, range, _job: job };
    let trees = train_forest(&job.cfg, &mut env);
    let accuracy = evaluate(&job.cfg, &trees, &mut env);
    p.world().barrier(p);
    RfResult { trees, accuracy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{generate, HaloParams};
    use megammap_cluster::{Cluster, ClusterSpec};
    use megammap_formats::DataUrl;

    fn setup(n: usize) -> (Cluster, Runtime, crate::datagen::HaloDataset) {
        let cluster = Cluster::new(ClusterSpec::new(2, 2).dram_per_node(1 << 30));
        let rt = Runtime::new(&cluster, RuntimeConfig::default().with_page_size(4096));
        let data = generate(HaloParams { n_points: n, ..Default::default() });
        let pobj = rt.backends().open(&DataUrl::parse("obj://rf/pts.bin").unwrap()).unwrap();
        data.write_object(pobj.as_ref()).unwrap();
        let lbytes: Vec<u8> = data.labels.iter().flat_map(|l| l.to_le_bytes()).collect();
        let lobj = rt.backends().open(&DataUrl::parse("obj://rf/lbl.bin").unwrap()).unwrap();
        lobj.write_at(0, &lbytes).unwrap();
        (cluster, rt, data)
    }

    #[test]
    fn learns_the_halos() {
        let (cluster, rt, _) = setup(2000);
        let rt2 = rt.clone();
        let (outs, _) = cluster.run(move |p| {
            run(
                p,
                &MegaRf {
                    rt: &rt2,
                    points_url: "obj://rf/pts.bin".into(),
                    labels_url: "obj://rf/lbl.bin".into(),
                    cfg: RfConfig::default(),
                    pcache_bytes: 1 << 20,
                },
            )
        });
        // All ranks grow the identical tree.
        for o in &outs[1..] {
            assert_eq!(o.trees, outs[0].trees);
        }
        // Well-separated halos are easy: expect high held-out accuracy.
        assert!(outs[0].accuracy > 0.9, "accuracy {}", outs[0].accuracy);
        let depth = outs[0].trees[0].depth();
        assert!(depth > 2 && depth <= RfConfig::default().max_depth + 1, "depth {depth}");
    }

    #[test]
    fn multiple_trees_do_not_hurt() {
        let (cluster, rt, _) = setup(1000);
        let rt2 = rt.clone();
        let (outs, _) = cluster.run(move |p| {
            run(
                p,
                &MegaRf {
                    rt: &rt2,
                    points_url: "obj://rf/pts.bin".into(),
                    labels_url: "obj://rf/lbl.bin".into(),
                    cfg: RfConfig { num_trees: 3, max_depth: 6, ..Default::default() },
                    pcache_bytes: 1 << 20,
                },
            )
        });
        assert_eq!(outs[0].trees.len(), 3);
        // Trees differ (different bags).
        assert_ne!(outs[0].trees[0], outs[0].trees[1]);
        assert!(outs[0].accuracy > 0.85, "accuracy {}", outs[0].accuracy);
    }
}
