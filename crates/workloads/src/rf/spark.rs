//! Random Forest on the Spark-style baseline (MLlib's algorithm).
//!
//! Same level-synchronous trainer as [`super::mega`] — identical trees —
//! but the data lives on the JVM heap in multiple copies, compute pays the
//! JVM factor, and aggregates are serialized TCP exchanges.

use megammap_cluster::comm::ReduceOp;
use megammap_cluster::{OomError, Proc};
use megammap_minispark::SparkContext;

use super::{evaluate, train_forest, RfConfig, RfEnv, RfResult};
use crate::point::Point3D;
use megammap::element::Element as _;

struct SparkEnv<'p> {
    p: &'p Proc,
    base: u64,
    points: Vec<Point3D>,
    labels: Vec<u32>,
}

impl RfEnv for SparkEnv<'_> {
    fn scan(&mut self, f: &mut dyn FnMut(u64, &Point3D, u32)) {
        for (k, (pt, l)) in self.points.iter().zip(&self.labels).enumerate() {
            f(self.base + k as u64, pt, *l);
        }
        // A JVM pass over the partition.
        self.p.advance(
            self.p
                .cpu()
                .with_slowdown(1.8)
                .mem_ns(self.points.len() as u64 * (Point3D::SIZE as u64 + 4)),
        );
    }

    fn allreduce_sum(&self, vals: &[u64]) -> Vec<u64> {
        self.p.advance(self.p.cpu().with_slowdown(1.8).serde_ns(vals.len() as u64 * 8));
        self.p.world().allreduce_u64(self.p, vals, ReduceOp::Sum)
    }

    fn allgather_samples(&self, vals: Vec<(u32, u64, Point3D)>) -> Vec<(u32, u64, Point3D)> {
        let bytes = vals.len() as u64 * (12 + Point3D::SIZE as u64);
        self.p.advance(self.p.cpu().with_slowdown(1.8).serde_ns(bytes));
        self.p.world().allgather(self.p, vals, 12 + Point3D::SIZE as u64)
    }

    fn charge_flops(&self, flops: u64) {
        self.p.advance(self.p.cpu().with_slowdown(1.8).flops_ns(flops));
    }
}

/// Run the Spark-style Random Forest over this process's partition.
pub fn run(
    p: &Proc,
    points: Vec<Point3D>,
    labels: Vec<u32>,
    part_base: u64,
    cfg: RfConfig,
) -> Result<RfResult, OomError> {
    assert_eq!(points.len(), labels.len());
    let sc = SparkContext::new(p);
    // Load both columns through the RDD layer (heap copies + serde).
    let _prdd = sc.load_partition(points.clone(), Point3D::SIZE as u64)?;
    let _lrdd = sc.load_partition(labels.clone(), 4)?;
    let mut env = SparkEnv { p, base: part_base, points, labels };
    let trees = train_forest(&cfg, &mut env);
    let accuracy = evaluate(&cfg, &trees, &mut env);
    Ok(RfResult { trees, accuracy })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{generate, HaloParams};
    use megammap_cluster::{Cluster, ClusterSpec};
    use megammap_formats::DataUrl;
    use megammap_sim::{CpuModel, LinkProfile};
    use std::sync::Arc;

    #[test]
    fn spark_and_mega_grow_identical_trees() {
        let data = Arc::new(generate(HaloParams { n_points: 1500, ..Default::default() }));
        let cfg = RfConfig::default();

        let spark_cluster = Cluster::new(
            ClusterSpec::new(2, 1)
                .link(LinkProfile::tcp_40g())
                .cpu(CpuModel::jvm())
                .dram_per_node(1 << 30),
        );
        let d2 = data.clone();
        let (souts, _) = spark_cluster.run(move |p| {
            let base = d2.points.len() * p.rank() / p.nprocs();
            let hi = d2.points.len() * (p.rank() + 1) / p.nprocs();
            run(p, d2.points[base..hi].to_vec(), d2.labels[base..hi].to_vec(), base as u64, cfg)
                .unwrap()
        });
        assert!(souts[0].accuracy > 0.9, "accuracy {}", souts[0].accuracy);

        let mm = Cluster::new(ClusterSpec::new(2, 1).dram_per_node(1 << 30));
        let rt =
            megammap::Runtime::new(&mm, megammap::RuntimeConfig::default().with_page_size(4096));
        let pobj = rt.backends().open(&DataUrl::parse("obj://rfs/p.bin").unwrap()).unwrap();
        data.write_object(pobj.as_ref()).unwrap();
        let lbytes: Vec<u8> = data.labels.iter().flat_map(|l| l.to_le_bytes()).collect();
        let lobj = rt.backends().open(&DataUrl::parse("obj://rfs/l.bin").unwrap()).unwrap();
        lobj.write_at(0, &lbytes).unwrap();
        let rt2 = rt.clone();
        let (mouts, _) = mm.run(move |p| {
            crate::rf::mega::run(
                p,
                &crate::rf::mega::MegaRf {
                    rt: &rt2,
                    points_url: "obj://rfs/p.bin".into(),
                    labels_url: "obj://rfs/l.bin".into(),
                    cfg,
                    pcache_bytes: 1 << 20,
                },
            )
        });
        assert_eq!(souts[0].trees, mouts[0].trees, "identical derandomized trees");
        assert_eq!(souts[0].accuracy, mouts[0].accuracy);
    }
}
