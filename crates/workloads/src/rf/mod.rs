//! Random Forest classification (paper §IV).
//!
//! "Initially, each process performs out-of-order bagging (oob) on
//! N/(oob·p) randomly-selected samples ... Each oob iteration measures the
//! entropy (Gini impurity) of each feature in a chosen feature subset. The
//! per-process oob results are then aggregated to find the feature
//! maximizing entropy. A point is then randomly selected from the dataset
//! and used as the split point. The dataset and processes are then divided
//! into two partitions: left and right. The recursion continues until
//! either the maximum depth (max_depth) of the tree is reached or the
//! entropy difference is below a threshold."
//!
//! This reproduction builds the tree level-synchronously with aggregated
//! Gini histograms (the MLlib formulation of the same recursion: instead of
//! physically splitting processes, every process scans its partition and
//! contributes per-node statistics to one allreduce per level). All random
//! choices are derandomized through `splitmix64`, so the MegaMmap and
//! Spark variants grow bit-identical trees.
//!
//! The task is the paper's: predict the KMeans/halo cluster assignment from
//! particle position ("these values are taken as input and used to predict
//! output clusters"; 80/20 stratified train/test split).

pub mod mega;
pub mod spark;

use megammap::tx::splitmix64;

use crate::point::Point3D;

/// Random-forest configuration (paper: 1 tree, max_depth 10).
#[derive(Debug, Clone, Copy)]
pub struct RfConfig {
    /// Trees in the forest.
    pub num_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Out-of-order bagging factor: a sample is in-bag with prob `1/oob`.
    pub oob: u32,
    /// Number of classes.
    pub n_classes: usize,
    /// Features examined per node (√3 ≈ 2 of the 3 coordinates).
    pub feat_subset: usize,
    /// Minimum Gini gain to keep splitting.
    pub min_gain: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RfConfig {
    fn default() -> Self {
        Self {
            num_trees: 1,
            max_depth: 10,
            oob: 2,
            n_classes: 8,
            feat_subset: 2,
            min_gain: 1e-6,
            seed: 11,
        }
    }
}

/// One node of a decision tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TreeNode {
    /// Internal split: `feature`, `threshold`, child indices.
    Split {
        /// Axis index (0..3).
        feature: usize,
        /// Samples with `axis < threshold` go left.
        threshold: f32,
        /// Index of the left child.
        left: usize,
        /// Index of the right child.
        right: usize,
    },
    /// Leaf with a predicted class.
    Leaf {
        /// Majority class.
        class: u32,
    },
}

/// A trained decision tree (nodes in a flat arena, root at 0).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tree {
    /// Arena of nodes.
    pub nodes: Vec<TreeNode>,
}

impl Tree {
    /// Predict the class of a point.
    pub fn predict(&self, p: &Point3D) -> u32 {
        let mut i = 0usize;
        loop {
            match self.nodes[i] {
                TreeNode::Leaf { class } => return class,
                TreeNode::Split { feature, threshold, left, right } => {
                    i = if p.axis(feature) < threshold { left } else { right };
                }
            }
        }
    }

    /// Depth of the tree.
    pub fn depth(&self) -> usize {
        fn rec(t: &Tree, i: usize) -> usize {
            match t.nodes[i] {
                TreeNode::Leaf { .. } => 1,
                TreeNode::Split { left, right, .. } => 1 + rec(t, left).max(rec(t, right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(self, 0)
        }
    }
}

/// A trained forest plus its held-out accuracy.
#[derive(Debug, Clone, PartialEq)]
pub struct RfResult {
    /// The trees.
    pub trees: Vec<Tree>,
    /// Accuracy on the 20% test split.
    pub accuracy: f64,
}

/// Whether global sample `idx` is in the bag of `tree` (derandomized oob).
#[inline]
pub fn in_bag(cfg: &RfConfig, tree: usize, idx: u64) -> bool {
    let h = splitmix64(cfg.seed ^ (tree as u64) << 32 ^ idx.wrapping_mul(0x9E3779B97F4A7C15));
    (h >> 11) as f64 / (1u64 << 53) as f64 <= 1.0 / cfg.oob as f64
}

/// Whether global sample `idx` is in the 80% training split (deterministic
/// stratified-ish split: hashing is label-independent but uniform).
#[inline]
pub fn in_train(seed: u64, idx: u64) -> bool {
    let h = splitmix64(seed ^ 0x7A_u64 ^ idx);
    !h.is_multiple_of(5)
}

/// The feature subset examined at a node (deterministic per node).
pub fn node_features(cfg: &RfConfig, tree: usize, node: usize) -> Vec<usize> {
    let mut feats: Vec<usize> = (0..3).collect();
    // Fisher-Yates with splitmix decisions.
    for i in (1..3).rev() {
        let j = (splitmix64(cfg.seed ^ (tree as u64) << 16 ^ (node as u64) << 2 ^ i as u64)
            % (i as u64 + 1)) as usize;
        feats.swap(i, j);
    }
    feats.truncate(cfg.feat_subset);
    feats.sort_unstable();
    feats
}

/// Gini impurity of a class histogram.
pub fn gini(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut sum = 0.0;
    for &c in counts {
        let p = c as f64 / total as f64;
        sum += p * p;
    }
    1.0 - sum
}

/// Gini gain of a candidate split.
pub fn gini_gain(left: &[u64], right: &[u64]) -> f64 {
    let nl: u64 = left.iter().sum();
    let nr: u64 = right.iter().sum();
    let n = nl + nr;
    if n == 0 || nl == 0 || nr == 0 {
        return 0.0;
    }
    let parent: Vec<u64> = left.iter().zip(right).map(|(a, b)| a + b).collect();
    gini(&parent) - (nl as f64 / n as f64) * gini(left) - (nr as f64 / n as f64) * gini(right)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_basics() {
        assert_eq!(gini(&[10, 0]), 0.0);
        assert!((gini(&[5, 5]) - 0.5).abs() < 1e-12);
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0]), 0.0);
    }

    #[test]
    fn gain_rewards_clean_splits() {
        // Parent 50/50; perfect split vs useless split.
        let perfect = gini_gain(&[10, 0], &[0, 10]);
        let useless = gini_gain(&[5, 5], &[5, 5]);
        assert!((perfect - 0.5).abs() < 1e-12);
        assert_eq!(useless, 0.0);
        assert_eq!(gini_gain(&[0, 0], &[5, 5]), 0.0, "degenerate split has no gain");
    }

    #[test]
    fn bagging_rate_near_one_over_oob() {
        let cfg = RfConfig { oob: 4, ..Default::default() };
        let n = 20_000u64;
        let hits = (0..n).filter(|&i| in_bag(&cfg, 0, i)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        // Different trees bag differently.
        let other = (0..n).filter(|&i| in_bag(&cfg, 1, i)).count();
        assert_ne!(hits, other);
    }

    #[test]
    fn train_split_is_about_80_percent() {
        let n = 20_000u64;
        let hits = (0..n).filter(|&i| in_train(7, i)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.8).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn node_features_deterministic_subset() {
        let cfg = RfConfig::default();
        let a = node_features(&cfg, 0, 5);
        let b = node_features(&cfg, 0, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert!(a.iter().all(|&f| f < 3));
        assert!(a[0] < a[1]);
    }

    #[test]
    fn tree_prediction_walks_splits() {
        let t = Tree {
            nodes: vec![
                TreeNode::Split { feature: 0, threshold: 5.0, left: 1, right: 2 },
                TreeNode::Leaf { class: 7 },
                TreeNode::Split { feature: 1, threshold: 0.0, left: 3, right: 4 },
                TreeNode::Leaf { class: 8 },
                TreeNode::Leaf { class: 9 },
            ],
        };
        assert_eq!(t.predict(&Point3D::new(1.0, 0.0, 0.0)), 7);
        assert_eq!(t.predict(&Point3D::new(9.0, -1.0, 0.0)), 8);
        assert_eq!(t.predict(&Point3D::new(9.0, 1.0, 0.0)), 9);
        assert_eq!(t.depth(), 3);
    }
}

/// Data/communication access the trainer needs — implemented over MegaMmap
/// vectors by [`mega`] and over heap partitions by [`spark`].
pub(crate) trait RfEnv {
    /// Scan this process's training partition: `f(global index, point,
    /// label)` for every local sample.
    fn scan(&mut self, f: &mut dyn FnMut(u64, &Point3D, u32));
    /// Elementwise sum-allreduce.
    fn allreduce_sum(&self, vals: &[u64]) -> Vec<u64>;
    /// Allgather candidate-sample records.
    fn allgather_samples(&self, vals: Vec<(u32, u64, Point3D)>) -> Vec<(u32, u64, Point3D)>;
    /// Charge compute.
    fn charge_flops(&self, flops: u64);
}

#[derive(Debug, Clone, Copy)]
enum Slot {
    Done(TreeNode),
    Pending {
        /// Fallback class if no samples reach the node.
        fallback: u32,
        depth: usize,
    },
}

/// Walk the partial tree; `Some(arena index)` if the point lands on a
/// pending node.
fn walk(arena: &[Slot], p: &Point3D) -> Option<usize> {
    let mut i = 0usize;
    loop {
        match arena[i] {
            Slot::Pending { .. } => return Some(i),
            Slot::Done(TreeNode::Leaf { .. }) => return None,
            Slot::Done(TreeNode::Split { feature, threshold, left, right }) => {
                i = if p.axis(feature) < threshold { left } else { right };
            }
        }
    }
}

/// Per-node candidate-sample cap for threshold estimation.
const CAND_SAMPLES: usize = 9;

/// Train one tree level-synchronously (identical on every process).
pub(crate) fn train_tree(cfg: &RfConfig, tree_idx: usize, env: &mut dyn RfEnv) -> Tree {
    let mut arena: Vec<Slot> = vec![Slot::Pending { fallback: 0, depth: 0 }];
    for _level in 0..=cfg.max_depth {
        let active: Vec<usize> = arena
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Slot::Pending { .. }))
            .map(|(i, _)| i)
            .collect();
        if active.is_empty() {
            break;
        }
        let node_slot: std::collections::HashMap<usize, u32> =
            active.iter().enumerate().map(|(s, &n)| (n, s as u32)).collect();

        // Pass 1: deterministic candidate samples per active node.
        let mut cands: Vec<std::collections::BinaryHeap<(u64, u64, [u32; 3])>> =
            active.iter().map(|_| std::collections::BinaryHeap::new()).collect();
        env.scan(&mut |idx, p, _label| {
            if !in_train(cfg.seed, idx) || !in_bag(cfg, tree_idx, idx) {
                return;
            }
            if let Some(node) = walk(&arena, p) {
                let slot = node_slot[&node] as usize;
                let h = splitmix64(cfg.seed ^ idx.wrapping_mul(0xD1342543DE82EF95));
                cands[slot].push((h, idx, [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()]));
                if cands[slot].len() > CAND_SAMPLES {
                    cands[slot].pop();
                }
            }
        });
        let mut local_cands: Vec<(u32, u64, Point3D)> = Vec::new();
        for (slot, heap) in cands.into_iter().enumerate() {
            for (h, _idx, enc) in heap.into_vec() {
                local_cands.push((
                    slot as u32,
                    h,
                    Point3D::new(
                        f32::from_bits(enc[0]),
                        f32::from_bits(enc[1]),
                        f32::from_bits(enc[2]),
                    ),
                ));
            }
        }
        let mut gathered = env.allgather_samples(local_cands);
        gathered.sort_by_key(|a| (a.0, a.1));

        // Candidate (feature, threshold) pairs per node: medians of the
        // gathered sample on the node's feature subset.
        let mut candidates: Vec<Vec<(usize, f32)>> = Vec::with_capacity(active.len());
        for (slot, &node) in active.iter().enumerate() {
            let pts: Vec<Point3D> = gathered
                .iter()
                .filter(|(s, _, _)| *s == slot as u32)
                .take(CAND_SAMPLES)
                .map(|(_, _, p)| *p)
                .collect();
            let mut cs = Vec::new();
            if !pts.is_empty() {
                for f in node_features(cfg, tree_idx, node) {
                    let mut vals: Vec<f32> = pts.iter().map(|p| p.axis(f)).collect();
                    vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    cs.push((f, vals[vals.len() / 2]));
                }
            }
            candidates.push(cs);
        }

        // Pass 2: class histograms per candidate side.
        let ncl = cfg.n_classes;
        let mut offsets = Vec::with_capacity(active.len());
        let mut len = 0usize;
        for cs in &candidates {
            offsets.push(len);
            len += cs.len() * 2 * ncl;
        }
        let mut hist = vec![0u64; len.max(1)];
        let mut scanned = 0u64;
        env.scan(&mut |idx, p, label| {
            if !in_train(cfg.seed, idx) || !in_bag(cfg, tree_idx, idx) {
                return;
            }
            scanned += 1;
            if let Some(node) = walk(&arena, p) {
                let slot = node_slot[&node] as usize;
                let base = offsets[slot];
                for (ci, (f, thr)) in candidates[slot].iter().enumerate() {
                    let side = usize::from(p.axis(*f) >= *thr);
                    hist[base + (ci * 2 + side) * ncl + label as usize % ncl] += 1;
                }
            }
        });
        env.charge_flops(scanned * (cfg.max_depth as u64 + 6));
        let hist = env.allreduce_sum(&hist);

        // Decide every active node (identical on all processes).
        for (slot, &node) in active.iter().enumerate() {
            let Slot::Pending { fallback, depth } = arena[node] else { unreachable!() };
            let cs = &candidates[slot];
            if cs.is_empty() {
                arena[node] = Slot::Done(TreeNode::Leaf { class: fallback });
                continue;
            }
            let base = offsets[slot];
            // Node class totals from candidate 0.
            let mut totals = vec![0u64; ncl];
            for c in 0..ncl {
                totals[c] = hist[base + c] + hist[base + ncl + c];
            }
            let majority = totals
                .iter()
                .enumerate()
                .max_by_key(|(i, &v)| (v, ncl - i))
                .map(|(i, _)| i as u32)
                .unwrap_or(fallback);
            let n_node: u64 = totals.iter().sum();
            // Pick the best candidate by Gini gain.
            let mut best: Option<(f64, usize)> = None;
            for ci in 0..cs.len() {
                let l = &hist[base + ci * 2 * ncl..base + (ci * 2 + 1) * ncl];
                let r = &hist[base + (ci * 2 + 1) * ncl..base + (ci * 2 + 2) * ncl];
                let gain = gini_gain(l, r);
                if best.is_none_or(|(g, _)| gain > g) {
                    best = Some((gain, ci));
                }
            }
            let (gain, ci) = best.expect("candidates nonempty");
            if depth >= cfg.max_depth || gain < cfg.min_gain || n_node < 2 {
                arena[node] = Slot::Done(TreeNode::Leaf { class: majority });
            } else {
                let (f, thr) = cs[ci];
                // Children fall back to their side's majority.
                let l = &hist[base + ci * 2 * ncl..base + (ci * 2 + 1) * ncl];
                let r = &hist[base + (ci * 2 + 1) * ncl..base + (ci * 2 + 2) * ncl];
                let maj = |h: &[u64]| {
                    h.iter()
                        .enumerate()
                        .max_by_key(|(i, &v)| (v, ncl - i))
                        .map(|(i, _)| i as u32)
                        .unwrap_or(majority)
                };
                let li = arena.len();
                arena.push(Slot::Pending { fallback: maj(l), depth: depth + 1 });
                let ri = arena.len();
                arena.push(Slot::Pending { fallback: maj(r), depth: depth + 1 });
                arena[node] =
                    Slot::Done(TreeNode::Split { feature: f, threshold: thr, left: li, right: ri });
            }
        }
    }
    // Any still-pending nodes become fallback leaves.
    let nodes: Vec<TreeNode> = arena
        .into_iter()
        .map(|s| match s {
            Slot::Done(n) => n,
            Slot::Pending { fallback, .. } => TreeNode::Leaf { class: fallback },
        })
        .collect();
    Tree { nodes }
}

/// Train the whole forest.
pub(crate) fn train_forest(cfg: &RfConfig, env: &mut dyn RfEnv) -> Vec<Tree> {
    (0..cfg.num_trees).map(|t| train_tree(cfg, t, env)).collect()
}

/// Majority-vote accuracy on the held-out 20% split.
pub(crate) fn evaluate(cfg: &RfConfig, trees: &[Tree], env: &mut dyn RfEnv) -> f64 {
    let mut correct = 0u64;
    let mut total = 0u64;
    env.scan(&mut |idx, p, label| {
        if in_train(cfg.seed, idx) {
            return;
        }
        total += 1;
        let mut votes = vec![0u32; cfg.n_classes];
        for t in trees {
            votes[t.predict(p) as usize % cfg.n_classes] += 1;
        }
        let pred = votes
            .iter()
            .enumerate()
            .max_by_key(|(i, &v)| (v, cfg.n_classes - i))
            .map(|(i, _)| i as u32)
            .unwrap();
        if pred == label {
            correct += 1;
        }
    });
    env.charge_flops(total * trees.len() as u64 * cfg.max_depth as u64);
    let sums = env.allreduce_sum(&[correct, total]);
    if sums[1] == 0 {
        0.0
    } else {
        sums[0] as f64 / sums[1] as f64
    }
}
