//! Reference implementations used to verify the distributed algorithms.
//!
//! The paper: "Each algorithm was verified by comparing their outputs on
//! several datasets to their published counterparts." These single-threaded
//! brute-force versions play the published-counterpart role in the test
//! suite.

use crate::point::Point3D;

/// Plain Lloyd iterations from fixed initial centroids. Returns the final
/// centroids and the inertia (sum of squared distances).
pub fn ref_kmeans(points: &[Point3D], init: &[Point3D], iters: usize) -> (Vec<Point3D>, f64) {
    let mut ks = init.to_vec();
    for _ in 0..iters {
        let mut sums = vec![Point3D::default(); ks.len()];
        let mut counts = vec![0u64; ks.len()];
        for p in points {
            let (i, _) = p.nearest_centroid(&ks);
            sums[i] = sums[i].add(p);
            counts[i] += 1;
        }
        for (i, k) in ks.iter_mut().enumerate() {
            if counts[i] > 0 {
                *k = sums[i].scale(1.0 / counts[i] as f32);
            }
        }
    }
    let inertia: f64 = points.iter().map(|p| p.nearest_centroid(&ks).1 as f64).sum();
    (ks, inertia)
}

/// Noise label used by [`ref_dbscan`].
pub const NOISE: i64 = -1;

/// Classic O(n²) DBSCAN. Returns per-point cluster ids (`NOISE` = -1).
pub fn ref_dbscan(points: &[Point3D], eps: f32, min_pts: usize) -> Vec<i64> {
    let n = points.len();
    let eps2 = eps * eps;
    let neighbors = |i: usize| -> Vec<usize> {
        (0..n).filter(|&j| points[i].dist2(&points[j]) <= eps2).collect()
    };
    let mut labels = vec![i64::MIN; n]; // MIN = unvisited
    let mut cluster = 0i64;
    for i in 0..n {
        if labels[i] != i64::MIN {
            continue;
        }
        let nb = neighbors(i);
        if nb.len() < min_pts {
            labels[i] = NOISE;
            continue;
        }
        labels[i] = cluster;
        let mut queue = nb;
        let mut qi = 0;
        while qi < queue.len() {
            let j = queue[qi];
            qi += 1;
            if labels[j] == NOISE {
                labels[j] = cluster; // border point
            }
            if labels[j] != i64::MIN {
                continue;
            }
            labels[j] = cluster;
            let nbj = neighbors(j);
            if nbj.len() >= min_pts {
                queue.extend(nbj);
            }
        }
        cluster += 1;
    }
    labels
}

/// Pair-counting Rand index between two labelings (1.0 = identical
/// partitions up to renaming). Quadratic; for test-sized data.
pub fn rand_index<A: PartialEq, B: PartialEq>(a: &[A], b: &[B]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let mut agree = 0u64;
    let mut total = 0u64;
    for i in 0..n {
        for j in (i + 1)..n {
            let same_a = a[i] == a[j];
            let same_b = b[i] == b[j];
            if same_a == same_b {
                agree += 1;
            }
            total += 1;
        }
    }
    agree as f64 / total as f64
}

/// One reference Gray-Scott step over a full 3-D periodic grid (fields
/// `u`, `v` of side `l`), returning the new fields.
#[allow(clippy::too_many_arguments)]
pub fn ref_gray_scott_step(
    u: &[f64],
    v: &[f64],
    l: usize,
    du: f64,
    dv: f64,
    f: f64,
    k: f64,
    dt: f64,
) -> (Vec<f64>, Vec<f64>) {
    let idx = |x: usize, y: usize, z: usize| (z * l + y) * l + x;
    let mut nu = vec![0.0; u.len()];
    let mut nv = vec![0.0; v.len()];
    for z in 0..l {
        for y in 0..l {
            for x in 0..l {
                let c = idx(x, y, z);
                let lap = |g: &[f64]| {
                    g[idx((x + 1) % l, y, z)]
                        + g[idx((x + l - 1) % l, y, z)]
                        + g[idx(x, (y + 1) % l, z)]
                        + g[idx(x, (y + l - 1) % l, z)]
                        + g[idx(x, y, (z + 1) % l)]
                        + g[idx(x, y, (z + l - 1) % l)]
                        - 6.0 * g[c]
                };
                let uvv = u[c] * v[c] * v[c];
                nu[c] = u[c] + dt * (du * lap(u) - uvv + f * (1.0 - u[c]));
                nv[c] = v[c] + dt * (dv * lap(v) + uvv - (f + k) * v[c]);
            }
        }
    }
    (nu, nv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{generate, HaloParams};

    #[test]
    fn kmeans_recovers_halo_centers() {
        let d = generate(HaloParams { n_points: 800, ..Default::default() });
        let (ks, inertia) = ref_kmeans(&d.points, &d.centers, 4);
        // Starting at the true centers, Lloyd must stay there.
        for (k, c) in ks.iter().zip(&d.centers) {
            assert!(k.dist(c) < 2.0, "centroid drifted {}", k.dist(c));
        }
        // Inertia ≈ n * 3 * sigma² for isotropic gaussians.
        let expected = 800.0 * 3.0 * 16.0;
        assert!((inertia - expected).abs() / expected < 0.25, "inertia {inertia}");
    }

    #[test]
    fn dbscan_finds_well_separated_halos() {
        let d = generate(HaloParams { n_points: 400, ..Default::default() });
        let labels = ref_dbscan(&d.points, 8.0, 4);
        let clusters: std::collections::HashSet<_> = labels.iter().filter(|&&l| l >= 0).collect();
        assert_eq!(clusters.len(), 8, "one cluster per halo");
        let ri = rand_index(&labels, &d.labels);
        assert!(ri > 0.99, "rand index {ri}");
    }

    #[test]
    fn dbscan_marks_sparse_noise() {
        // A tight cluster plus two far-away isolated points.
        let mut pts: Vec<Point3D> =
            (0..20).map(|i| Point3D::new(i as f32 * 0.1, 0.0, 0.0)).collect();
        pts.push(Point3D::new(100.0, 0.0, 0.0));
        pts.push(Point3D::new(-100.0, 0.0, 0.0));
        let labels = ref_dbscan(&pts, 1.0, 3);
        assert_eq!(labels[20], NOISE);
        assert_eq!(labels[21], NOISE);
        assert!(labels[..20].iter().all(|&l| l == 0));
    }

    #[test]
    fn rand_index_properties() {
        assert_eq!(rand_index(&[1, 1, 2, 2], &[5, 5, 9, 9]), 1.0, "renaming is free");
        assert_eq!(rand_index(&[1, 1, 1, 1], &[1, 1, 2, 2]), 1.0 / 3.0);
        assert_eq!(rand_index::<u8, u8>(&[1], &[2]), 1.0);
    }

    #[test]
    fn gray_scott_uniform_steady_state() {
        // With v == 0 everywhere and u == 1, the system is at the trivial
        // fixed point: u stays 1, v stays 0.
        let l = 4;
        let u = vec![1.0; l * l * l];
        let v = vec![0.0; l * l * l];
        let (nu, nv) = ref_gray_scott_step(&u, &v, l, 0.2, 0.1, 0.025, 0.055, 1.0);
        assert!(nu.iter().all(|&x| (x - 1.0).abs() < 1e-12));
        assert!(nv.iter().all(|&x| x.abs() < 1e-12));
    }

    #[test]
    fn gray_scott_perturbation_diffuses() {
        let l = 6;
        let mut u = vec![1.0; l * l * l];
        let mut v = vec![0.0; l * l * l];
        let c = (2 * l + 2) * l + 2;
        u[c] = 0.5;
        v[c] = 0.25;
        for _ in 0..3 {
            let (nu, nv) = ref_gray_scott_step(&u, &v, l, 0.2, 0.1, 0.025, 0.055, 1.0);
            u = nu;
            v = nv;
        }
        // The reaction has spread beyond the seed cell.
        let active = v.iter().filter(|&&x| x > 1e-9).count();
        assert!(active > 1, "v should diffuse, active={active}");
        assert!(u.iter().all(|&x| x.is_finite()));
    }
}
