//! µDBSCAN density-based clustering (paper §IV).
//!
//! "Initially, DBSCAN constructs a k-d tree ... At the first iteration, the
//! dataset is split evenly among the processes. The median and entropy is
//! estimated per-axis using a small, random subsample. The axis with the
//! largest entropy is chosen, and each process divides the dataset into two
//! fractions: left and right of the median. Processes are then partitioned
//! to handle the subsets ... Now that each point belongs to a µcluster
//! (set of points in a leaf), the µclusters can be merged in parallel to
//! form the full clusters."
//!
//! Implementation structure shared by both variants:
//!
//! 1. **Recursive k-d partition** — processes split in half per level;
//!    the split plane is the subsample median on the highest-variance axis
//!    (variance stands in for the paper's entropy estimate).
//! 2. **Ghost exchange** — points within ε of any split plane are
//!    broadcast, so per-partition neighbour counts (and hence core status)
//!    are *exact*: any cross-partition neighbour pair lies within ε of the
//!    separating plane.
//! 3. **Local DBSCAN** — a uniform-grid-indexed scan labels local
//!    µclusters.
//! 4. **µcluster merge** — boundary core points are gathered; clusters
//!    with core points within ε union; border points adopt adjacent remote
//!    cores' clusters.

pub mod mega;
pub mod mpi;

use megammap::impl_element_struct;

use crate::point::Point3D;

/// DBSCAN parameters (paper defaults: ε = 8, min_pts = 64 at full scale;
/// tests use smaller min_pts for smaller datasets).
#[derive(Debug, Clone, Copy)]
pub struct DbscanConfig {
    /// Neighbourhood radius.
    pub eps: f32,
    /// Minimum neighbours (inclusive of self) for a core point.
    pub min_pts: usize,
    /// Subsample size per process for median/variance estimation.
    pub sample: usize,
    /// Seed for subsampling.
    pub seed: u64,
}

impl Default for DbscanConfig {
    fn default() -> Self {
        Self { eps: 8.0, min_pts: 8, sample: 64, seed: 3 }
    }
}

/// A point tagged with its global dataset index, so identities survive the
/// append-based redistribution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IdPoint {
    /// Global index in the input dataset.
    pub id: u64,
    /// Coordinates.
    pub p: Point3D,
}

impl_element_struct!(IdPoint { id: u64, p: Point3D });

/// A split plane recorded along the recursion path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitPlane {
    /// Axis index (0..3).
    pub axis: usize,
    /// Plane coordinate.
    pub value: f32,
}

/// Result of a DBSCAN run: `(global point id, cluster id)` pairs, cluster
/// id `-1` meaning noise. Sorted by id.
#[derive(Debug, Clone, PartialEq)]
pub struct DbscanResult {
    /// Labels per point id.
    pub labels: Vec<(u64, i64)>,
    /// Number of distinct clusters found.
    pub n_clusters: usize,
}

/// Choose the split plane from a gathered subsample: the axis with the
/// largest variance, split at the sample median. Deterministic given the
/// (rank-ordered) sample.
pub(crate) fn choose_split(sample: &[Point3D]) -> SplitPlane {
    assert!(!sample.is_empty(), "empty split sample");
    let mut best = SplitPlane { axis: 0, value: 0.0 };
    let mut best_var = -1.0f64;
    for axis in 0..3 {
        let vals: Vec<f64> = sample.iter().map(|p| p.axis(axis) as f64).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
        if var > best_var {
            let mut sorted = vals.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            best_var = var;
            best = SplitPlane { axis, value: sorted[sorted.len() / 2] as f32 };
        }
    }
    best
}

/// Deterministically subsample `k` points (seeded by `seed` and the points'
/// ids so both variants pick the same sample regardless of distribution).
/// The streaming [`StreamSample`] supersedes this in the hot paths; kept
/// as the reference implementation its tests compare against.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn subsample(points: &[IdPoint], k: usize, seed: u64) -> Vec<Point3D> {
    let mut tagged: Vec<(u64, &IdPoint)> = points
        .iter()
        .map(|ip| (megammap::tx::splitmix64(seed ^ ip.id.wrapping_mul(0x2545F4914F6CDD1D)), ip))
        .collect();
    tagged.sort_by_key(|(h, _)| *h);
    tagged.into_iter().take(k).map(|(_, ip)| ip.p).collect()
}

/// Uniform-grid spatial index for ε-neighbour queries.
pub(crate) struct GridIndex {
    cell: f32,
    map: std::collections::HashMap<(i32, i32, i32), Vec<usize>>,
}

impl GridIndex {
    pub(crate) fn build(points: &[Point3D], eps: f32) -> Self {
        let cell = eps.max(1e-6);
        let mut map: std::collections::HashMap<(i32, i32, i32), Vec<usize>> =
            std::collections::HashMap::new();
        for (i, p) in points.iter().enumerate() {
            map.entry(Self::key(p, cell)).or_default().push(i);
        }
        Self { cell, map }
    }

    fn key(p: &Point3D, cell: f32) -> (i32, i32, i32) {
        ((p.x / cell).floor() as i32, (p.y / cell).floor() as i32, (p.z / cell).floor() as i32)
    }

    /// Indices of points within `eps` of `q` (inclusive).
    pub(crate) fn neighbors(&self, points: &[Point3D], q: &Point3D, eps: f32) -> Vec<usize> {
        let (cx, cy, cz) = Self::key(q, self.cell);
        let eps2 = eps * eps;
        let mut out = Vec::new();
        for dx in -1..=1 {
            for dy in -1..=1 {
                for dz in -1..=1 {
                    if let Some(bucket) = self.map.get(&(cx + dx, cy + dy, cz + dz)) {
                        for &i in bucket {
                            if points[i].dist2(q) <= eps2 {
                                out.push(i);
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// The local phase: DBSCAN over `own` points with `ghosts` contributing to
/// neighbour counts (but not receiving labels). Returns per-own-point
/// labels (µcluster ids local to this partition, -1 = noise/undecided) and
/// per-own-point core flags.
pub(crate) fn local_dbscan(
    own: &[IdPoint],
    ghosts: &[IdPoint],
    cfg: &DbscanConfig,
) -> (Vec<i64>, Vec<bool>) {
    let all: Vec<Point3D> = own.iter().map(|ip| ip.p).chain(ghosts.iter().map(|ip| ip.p)).collect();
    let index = GridIndex::build(&all, cfg.eps);
    let n = own.len();
    // Core status: neighbour count over own + ghosts (exact global count).
    let core: Vec<bool> =
        (0..n).map(|i| index.neighbors(&all, &all[i], cfg.eps).len() >= cfg.min_pts).collect();
    let mut labels = vec![-1i64; n];
    let mut cluster = 0i64;
    for i in 0..n {
        if labels[i] != -1 || !core[i] {
            continue;
        }
        labels[i] = cluster;
        let mut queue: Vec<usize> =
            index.neighbors(&all, &all[i], cfg.eps).into_iter().filter(|&j| j < n).collect();
        let mut qi = 0;
        while qi < queue.len() {
            let j = queue[qi];
            qi += 1;
            if labels[j] == -1 {
                labels[j] = cluster;
                if core[j] {
                    queue.extend(
                        index
                            .neighbors(&all, &all[j], cfg.eps)
                            .into_iter()
                            .filter(|&x| x < n && labels[x] == -1),
                    );
                }
            }
        }
        cluster += 1;
    }
    (labels, core)
}

/// Whether `p` lies within `eps` of any recorded split plane — the
/// boundary-band membership test for ghost/merge exchanges.
pub(crate) fn in_band(p: &Point3D, planes: &[SplitPlane], eps: f32) -> bool {
    planes.iter().any(|pl| (p.axis(pl.axis) - pl.value).abs() <= eps)
}

/// Union-find over global µcluster ids.
pub(crate) struct UnionFind {
    parent: std::collections::HashMap<u64, u64>,
}

impl UnionFind {
    pub(crate) fn new() -> Self {
        Self { parent: std::collections::HashMap::new() }
    }

    pub(crate) fn find(&mut self, x: u64) -> u64 {
        let p = *self.parent.entry(x).or_insert(x);
        if p == x {
            return x;
        }
        let root = self.find(p);
        self.parent.insert(x, root);
        root
    }

    pub(crate) fn union(&mut self, a: u64, b: u64) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic direction: smaller id wins.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent.insert(hi, lo);
        }
    }
}

/// A boundary record exchanged during the merge phase.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BoundaryPoint {
    pub(crate) p: Point3D,
    /// Globally unique µcluster id (`rank << 40 | local cluster`), or -1.
    pub(crate) gcluster: i64,
    pub(crate) core: bool,
}

/// Merge µclusters: union clusters whose core boundary points are within
/// ε. Returns the union-find over global µcluster ids.
pub(crate) fn merge_clusters(boundary: &[BoundaryPoint], eps: f32) -> UnionFind {
    let pts: Vec<Point3D> = boundary.iter().map(|b| b.p).collect();
    let index = GridIndex::build(&pts, eps);
    let mut uf = UnionFind::new();
    for (i, b) in boundary.iter().enumerate() {
        if !b.core {
            continue;
        }
        for j in index.neighbors(&pts, &b.p, eps) {
            let o = &boundary[j];
            if j != i && o.core && b.gcluster >= 0 && o.gcluster >= 0 {
                uf.union(b.gcluster as u64, o.gcluster as u64);
            }
        }
    }
    uf
}

/// Compose a globally unique µcluster id.
pub(crate) fn gcluster(rank: usize, local: i64) -> i64 {
    if local < 0 {
        -1
    } else {
        ((rank as i64) << 40) | local
    }
}

/// The phase shared by both variants after redistribution: ghost exchange,
/// local DBSCAN, µcluster merge, noise adoption, global label assembly.
pub(crate) fn finish(
    p: &megammap_cluster::Proc,
    own: Vec<IdPoint>,
    planes: &[SplitPlane],
    cfg: &DbscanConfig,
) -> DbscanResult {
    let world = p.world();
    // Ghost exchange: everyone's boundary-band points.
    let my_band: Vec<IdPoint> =
        own.iter().filter(|ip| in_band(&ip.p, planes, cfg.eps)).copied().collect();
    p.compute_flops(own.len() as u64 * planes.len().max(1) as u64 * 2);
    let band_all = world.allgather_shared(p, my_band.clone(), 20);
    let my_ids: std::collections::HashSet<u64> = own.iter().map(|ip| ip.id).collect();
    let ghosts: Vec<IdPoint> =
        band_all.iter().filter(|ip| !my_ids.contains(&ip.id)).copied().collect();

    // Local µclusters with exact core counts.
    let (labels, core) = local_dbscan(&own, &ghosts, cfg);
    // ~each point visits its neighbours once.
    p.compute_flops((own.len() + ghosts.len()) as u64 * 27);

    // Merge phase: gather boundary records with µcluster ids + core flags.
    let my_records: Vec<(IdPoint, i64, bool)> = own
        .iter()
        .zip(labels.iter().zip(&core))
        .filter(|(ip, _)| in_band(&ip.p, planes, cfg.eps))
        .map(|(ip, (l, c))| (*ip, gcluster(p.rank(), *l), *c))
        .collect();
    let records = world.allgather_shared(p, my_records, 32);
    let boundary: Vec<BoundaryPoint> = records
        .iter()
        .map(|(ip, g, c)| BoundaryPoint { p: ip.p, gcluster: *g, core: *c })
        .collect();
    let mut uf = merge_clusters(&boundary, cfg.eps);
    p.compute_flops(boundary.len() as u64 * 27);

    // Final labels: union-find roots; boundary noise adopts the nearest
    // (smallest-root) adjacent remote core cluster.
    let boundary_pts: Vec<Point3D> = boundary.iter().map(|b| b.p).collect();
    let bindex = GridIndex::build(&boundary_pts, cfg.eps);
    let mut final_labels: Vec<(u64, i64)> = Vec::with_capacity(own.len());
    for (i, ip) in own.iter().enumerate() {
        let mut label =
            if labels[i] >= 0 { uf.find(gcluster(p.rank(), labels[i]) as u64) as i64 } else { -1 };
        if label < 0 && in_band(&ip.p, planes, cfg.eps) {
            // A border point whose core neighbours all live remotely.
            let mut adopt: Option<u64> = None;
            for j in bindex.neighbors(&boundary_pts, &ip.p, cfg.eps) {
                let b = &boundary[j];
                if b.core && b.gcluster >= 0 {
                    let root = uf.find(b.gcluster as u64);
                    adopt = Some(adopt.map_or(root, |a| a.min(root)));
                }
            }
            if let Some(root) = adopt {
                label = root as i64;
            }
        }
        final_labels.push((ip.id, label));
    }
    let mut all = world.allgather(p, final_labels, 16);
    all.sort_unstable();
    let n_clusters = all
        .iter()
        .filter(|(_, l)| *l >= 0)
        .map(|(_, l)| *l)
        .collect::<std::collections::HashSet<i64>>()
        .len();
    DbscanResult { labels: all, n_clusters }
}

/// Streaming deterministic subsample: keep the `k` smallest id-hashes, so
/// both variants sample identically however the data is distributed.
pub(crate) struct StreamSample {
    k: usize,
    seed: u64,
    heap: std::collections::BinaryHeap<(u64, u64, [u32; 3])>,
}

impl StreamSample {
    pub(crate) fn new(k: usize, seed: u64) -> Self {
        Self { k, seed, heap: std::collections::BinaryHeap::new() }
    }

    pub(crate) fn push(&mut self, ip: &IdPoint) {
        let h = megammap::tx::splitmix64(self.seed ^ ip.id.wrapping_mul(0x2545F4914F6CDD1D));
        let enc = [ip.p.x.to_bits(), ip.p.y.to_bits(), ip.p.z.to_bits()];
        self.heap.push((h, ip.id, enc));
        if self.heap.len() > self.k {
            self.heap.pop();
        }
    }

    pub(crate) fn take(self) -> Vec<Point3D> {
        let mut v: Vec<_> = self.heap.into_vec();
        v.sort_unstable();
        v.into_iter()
            .map(|(_, _, e)| {
                Point3D::new(f32::from_bits(e[0]), f32::from_bits(e[1]), f32::from_bits(e[2]))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{generate, HaloParams};

    fn idpoints(pts: &[Point3D]) -> Vec<IdPoint> {
        pts.iter().enumerate().map(|(i, p)| IdPoint { id: i as u64, p: *p }).collect()
    }

    #[test]
    fn choose_split_picks_widest_axis() {
        let sample: Vec<Point3D> =
            (0..10).map(|i| Point3D::new(i as f32 * 100.0, 1.0, 2.0)).collect();
        let sp = choose_split(&sample);
        assert_eq!(sp.axis, 0);
        assert!((sp.value - 500.0).abs() <= 100.0);
    }

    #[test]
    fn subsample_is_deterministic_and_distribution_independent() {
        let d = generate(HaloParams { n_points: 200, ..Default::default() });
        let ips = idpoints(&d.points);
        let a = subsample(&ips, 16, 9);
        let mut shuffled = ips.clone();
        shuffled.reverse();
        let b = subsample(&shuffled, 16, 9);
        assert_eq!(a, b, "sample depends on ids, not order");
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn grid_index_matches_brute_force() {
        let d = generate(HaloParams { n_points: 300, ..Default::default() });
        let eps = 8.0;
        let idx = GridIndex::build(&d.points, eps);
        for q in d.points.iter().step_by(29) {
            let mut got = idx.neighbors(&d.points, q, eps);
            got.sort_unstable();
            let want: Vec<usize> =
                (0..d.points.len()).filter(|&i| d.points[i].dist2(q) <= eps * eps).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn local_dbscan_matches_reference_without_ghosts() {
        let d = generate(HaloParams { n_points: 300, ..Default::default() });
        let cfg = DbscanConfig { eps: 8.0, min_pts: 4, ..Default::default() };
        let (labels, core) = local_dbscan(&idpoints(&d.points), &[], &cfg);
        let expect = crate::verify::ref_dbscan(&d.points, cfg.eps, cfg.min_pts);
        let ri = crate::verify::rand_index(&labels, &expect);
        assert!(ri > 0.999, "rand index {ri}");
        assert!(core.iter().filter(|&&c| c).count() > 200);
    }

    #[test]
    fn ghosts_make_boundary_points_core() {
        // 5 points in a line; split between index 2 and 3. Without ghosts
        // the left side sees only 3 points (min_pts 4 → no cores); with the
        // right side as ghosts, the boundary points become core.
        let pts: Vec<Point3D> = (0..5).map(|i| Point3D::new(i as f32, 0.0, 0.0)).collect();
        let ips = idpoints(&pts);
        let cfg = DbscanConfig { eps: 2.1, min_pts: 4, ..Default::default() };
        let (_, core_without) = local_dbscan(&ips[..3], &[], &cfg);
        assert!(core_without.iter().all(|&c| !c));
        let (_, core_with) = local_dbscan(&ips[..3], &ips[3..], &cfg);
        assert!(core_with[1] && core_with[2], "ghost neighbours must count");
    }

    #[test]
    fn union_find_merges_transitively() {
        let mut uf = UnionFind::new();
        uf.union(5, 9);
        uf.union(9, 2);
        assert_eq!(uf.find(5), 2);
        assert_eq!(uf.find(9), 2);
        assert_eq!(uf.find(7), 7);
    }

    #[test]
    fn merge_links_straddling_clusters() {
        // Two dense µclusters split by a plane at x=5, touching across it.
        let mk = |x0: f32, g: i64| -> Vec<BoundaryPoint> {
            (0..4)
                .map(|i| BoundaryPoint {
                    p: Point3D::new(x0 + i as f32 * 0.5, 0.0, 0.0),
                    gcluster: g,
                    core: true,
                })
                .collect()
        };
        let mut boundary = mk(3.0, 10);
        boundary.extend(mk(5.0, 20));
        let mut uf = merge_clusters(&boundary, 1.0);
        assert_eq!(uf.find(10), uf.find(20), "straddling clusters merge");
        // A far-away third cluster stays separate.
        boundary.push(BoundaryPoint { p: Point3D::new(100.0, 0.0, 0.0), gcluster: 30, core: true });
        let mut uf = merge_clusters(&boundary, 1.0);
        assert_ne!(uf.find(30), uf.find(10));
    }

    #[test]
    fn band_membership() {
        let planes = vec![SplitPlane { axis: 0, value: 10.0 }];
        assert!(in_band(&Point3D::new(9.0, 0.0, 0.0), &planes, 2.0));
        assert!(in_band(&Point3D::new(11.5, 0.0, 0.0), &planes, 2.0));
        assert!(!in_band(&Point3D::new(20.0, 0.0, 0.0), &planes, 2.0));
        assert!(!in_band(&Point3D::new(9.0, 0.0, 0.0), &[], 2.0));
    }

    #[test]
    fn gcluster_ids_unique_per_rank() {
        assert_eq!(gcluster(0, -1), -1);
        assert_ne!(gcluster(1, 0), gcluster(2, 0));
        assert_ne!(gcluster(1, 0), gcluster(1, 1));
    }
}
