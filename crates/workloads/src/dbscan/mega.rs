//! µDBSCAN on MegaMmap.
//!
//! The k-d tree construction runs over shared vectors: at each level every
//! process streams its PGAS slice of the current vector and **appends**
//! each point to the `left` or `right` child vector (the Append-Only
//! Global policy — "in DBSCAN, a k-d tree is created by appending samples
//! to the left and right branches based on a split point"). Process groups
//! then split to follow the branches. Leaves are scanned out of the final
//! vectors; the merge phase is the shared [`finish`](super::finish).

use megammap::prelude::*;
use megammap_cluster::{Comm, Proc};

use super::{choose_split, finish, DbscanConfig, DbscanResult, IdPoint, SplitPlane, StreamSample};
use crate::point::Point3D;

/// A MegaMmap DBSCAN job.
pub struct MegaDbscan<'a> {
    /// The deployed runtime.
    pub rt: &'a Runtime,
    /// Dataset vector URL (`Point3D` records).
    pub url: String,
    /// Parameters.
    pub cfg: DbscanConfig,
    /// pcache bound per vector per process.
    pub pcache_bytes: u64,
    /// Unique run tag (namespaces the intermediate tree vectors).
    pub tag: String,
}

const CHUNK: usize = 1024;

/// Stream the local slice of an `IdPoint` vector, calling `f` per point.
fn stream_ids(
    p: &Proc,
    v: &MmVec<IdPoint>,
    range: std::ops::Range<u64>,
    mut f: impl FnMut(&IdPoint),
) {
    let tx = v
        .tx(p, TxKind::seq(range.start, range.end - range.start), Access::ReadOnly)
        .expect("begin stream tx");
    let mut buf = vec![IdPoint::default(); CHUNK];
    let mut i = range.start;
    while i < range.end {
        let n = CHUNK.min((range.end - i) as usize);
        v.read_into(p, i, &mut buf[..n]).expect("stream read");
        for ip in &buf[..n] {
            f(ip);
        }
        i += n as u64;
    }
    tx.end().expect("end stream tx");
}

/// Run µDBSCAN; every process calls this (SPMD).
pub fn run(p: &Proc, job: &MegaDbscan<'_>) -> DbscanResult {
    let cfg = job.cfg;
    let world = p.world();

    // Level 0: tag the raw dataset with global indices into an IdPoint
    // vector (streamed; Write-Local over the PGAS slice).
    let src: MmVec<Point3D> =
        MmVec::open(job.rt, p, &job.url, VecOptions::new().pcache(job.pcache_bytes))
            .expect("open dataset");
    src.pgas(p, p.rank(), p.nprocs());
    let n = src.len();
    let tagged_url = format!("mem://dbs-{}-tagged", job.tag);
    let tagged: MmVec<IdPoint> =
        MmVec::open(job.rt, p, &tagged_url, VecOptions::new().len(n).pcache(job.pcache_bytes))
            .expect("open tagged vector");
    {
        let range = src.local_range();
        let rtx = src
            .tx(p, TxKind::seq(range.start, range.end - range.start), Access::ReadLocal)
            .expect("begin tag read tx");
        let wtx = tagged
            .tx(p, TxKind::seq(range.start, range.end - range.start), Access::WriteLocal)
            .expect("begin tag write tx");
        let mut buf = vec![Point3D::default(); CHUNK];
        let mut out = vec![IdPoint::default(); CHUNK];
        let mut i = range.start;
        while i < range.end {
            let cn = CHUNK.min((range.end - i) as usize);
            src.read_into(p, i, &mut buf[..cn]).expect("read points");
            for k in 0..cn {
                out[k] = IdPoint { id: i + k as u64, p: buf[k] };
            }
            tagged.write_slice(p, i, &out[..cn]).expect("write tagged");
            i += cn as u64;
        }
        rtx.end().expect("end tag read tx");
        wtx.end().expect("end tag write tx");
    }
    world.barrier(p);

    // Recursive split: stream-sample, choose plane, append to children,
    // halve the communicator.
    let mut comm: Comm = world.clone();
    let mut cur = tagged;
    let mut path = String::new();
    let mut planes: Vec<SplitPlane> = Vec::new();
    let mut level = 0usize;
    while comm.size() > 1 {
        cur.pgas(p, comm.rank_of(p), comm.size());
        let range = cur.local_range();

        // Pass 1: deterministic subsample (streamed), gathered comm-wide.
        let mut sampler = StreamSample::new(cfg.sample, cfg.seed.wrapping_add(level as u64));
        stream_ids(p, &cur, range.clone(), |ip| sampler.push(ip));
        let sample = comm.allgather_shared(p, sampler.take(), Point3D::SIZE as u64);
        let plane = choose_split(&sample);

        // Pass 2: append each point to the matching child (Append Global).
        let left_url = format!("mem://dbs-{}-{}{}L", job.tag, level, path);
        let right_url = format!("mem://dbs-{}-{}{}R", job.tag, level, path);
        let left: MmVec<IdPoint> =
            MmVec::open(job.rt, p, &left_url, VecOptions::new().pcache(job.pcache_bytes))
                .expect("left child");
        let right: MmVec<IdPoint> =
            MmVec::open(job.rt, p, &right_url, VecOptions::new().pcache(job.pcache_bytes))
                .expect("right child");
        let ltx = left.tx(p, TxKind::append(0), Access::AppendGlobal).expect("begin left tx");
        let rtx = right.tx(p, TxKind::append(0), Access::AppendGlobal).expect("begin right tx");
        stream_ids(p, &cur, range, |ip| {
            if ip.p.axis(plane.axis) < plane.value {
                left.append(p, &ltx, *ip);
            } else {
                right.append(p, &rtx, *ip);
            }
        });
        ltx.end().expect("end left tx");
        rtx.end().expect("end right tx");
        comm.barrier(p);

        // Halve the communicator; lower half takes the left branch.
        let half = comm.size() / 2;
        let go_left = comm.rank_of(p) < half;
        let color = u64::from(!go_left);
        comm = comm.split(p, color, comm.rank_of(p));
        cur = if go_left { left } else { right };
        path.push(if go_left { 'L' } else { 'R' });
        planes.push(plane);
        level += 1;
    }

    // Leaf: this process owns the whole remaining vector.
    let mut own: Vec<IdPoint> = Vec::with_capacity(cur.len() as usize);
    stream_ids(p, &cur, 0..cur.len(), |ip| own.push(*ip));
    world.barrier(p);
    finish(p, own, &planes, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{generate, HaloParams};
    use crate::verify::{rand_index, ref_dbscan};
    use megammap_cluster::{Cluster, ClusterSpec};
    use megammap_formats::DataUrl;

    fn setup(n_points: usize) -> (Runtime, Cluster, crate::datagen::HaloDataset) {
        let cluster = Cluster::new(ClusterSpec::new(2, 2).dram_per_node(1 << 30));
        let rt = Runtime::new(&cluster, RuntimeConfig::default().with_page_size(4096));
        let data = generate(HaloParams { n_points, ..Default::default() });
        let obj = rt.backends().open(&DataUrl::parse("obj://dbs/pts.bin").unwrap()).unwrap();
        data.write_object(obj.as_ref()).unwrap();
        (rt, cluster, data)
    }

    #[test]
    fn matches_reference_dbscan() {
        let (rt, cluster, data) = setup(1200);
        let rt2 = rt.clone();
        let (outs, _) = cluster.run(move |p| {
            run(
                p,
                &MegaDbscan {
                    rt: &rt2,
                    url: "obj://dbs/pts.bin".into(),
                    cfg: DbscanConfig { eps: 8.0, min_pts: 8, ..Default::default() },
                    pcache_bytes: 1 << 20,
                    tag: "ref".into(),
                },
            )
        });
        // All ranks agree.
        for o in &outs[1..] {
            assert_eq!(o.labels, outs[0].labels);
        }
        // Labels cover every point id exactly once, sorted.
        assert_eq!(outs[0].labels.len(), 1200);
        assert!(outs[0].labels.windows(2).all(|w| w[0].0 + 1 == w[1].0));
        // Partition agrees with the brute-force reference.
        let expect = ref_dbscan(&data.points, 8.0, 8);
        let got: Vec<i64> = outs[0].labels.iter().map(|(_, l)| *l).collect();
        let ri = rand_index(&got, &expect);
        assert!(ri > 0.995, "rand index {ri}");
        assert_eq!(outs[0].n_clusters, 8, "one cluster per halo");
    }

    #[test]
    fn split_straddling_cluster_is_merged() {
        // One tight line of points spanning the whole x-range: every split
        // plane cuts through it, exercising the µcluster merge.
        let cluster = Cluster::new(ClusterSpec::new(1, 4).dram_per_node(1 << 30));
        let rt = Runtime::new(&cluster, RuntimeConfig::default().with_page_size(4096));
        let pts: Vec<crate::point::Point3D> =
            (0..256).map(|i| crate::point::Point3D::new(i as f32 * 0.5, 0.0, 0.0)).collect();
        let bytes: Vec<u8> = {
            use megammap::element::Element;
            let mut b = vec![0u8; pts.len() * 12];
            for (i, p) in pts.iter().enumerate() {
                p.write_to(&mut b[i * 12..(i + 1) * 12]);
            }
            b
        };
        let obj = rt.backends().open(&DataUrl::parse("obj://dbs/line.bin").unwrap()).unwrap();
        obj.write_at(0, &bytes).unwrap();
        let rt2 = rt.clone();
        let (outs, _) = cluster.run(move |p| {
            run(
                p,
                &MegaDbscan {
                    rt: &rt2,
                    url: "obj://dbs/line.bin".into(),
                    cfg: DbscanConfig { eps: 1.0, min_pts: 3, ..Default::default() },
                    pcache_bytes: 1 << 20,
                    tag: "line".into(),
                },
            )
        });
        assert_eq!(outs[0].n_clusters, 1, "the line is one cluster despite the splits");
        let first = outs[0].labels[0].1;
        assert!(outs[0].labels.iter().all(|(_, l)| *l == first));
    }
}
