//! µDBSCAN in traditional MPI style — the paper's baseline.
//!
//! Identical algorithmic decisions to the MegaMmap variant (same streamed
//! subsample hashes, same split planes), but data redistribution is
//! explicit: at each level every process partitions its local points by
//! the split plane and sends per-destination chunks to the half of the
//! communicator handling that side (an `MPI_Alltoallv` pattern). The
//! developer owns all partitioning and messaging — this is the code-volume
//! cost Fig. 4 measures.

use megammap_cluster::{Comm, Proc};

use super::{choose_split, finish, DbscanConfig, DbscanResult, IdPoint, SplitPlane, StreamSample};
use crate::point::Point3D;
use megammap::element::Element as _;

/// An MPI-style DBSCAN job.
pub struct MpiDbscan {
    /// Parameters.
    pub cfg: DbscanConfig,
}

/// Run the baseline over this process's partition (SPMD). `part_base` is
/// the global index of the first point.
pub fn run(p: &Proc, partition: Vec<Point3D>, part_base: u64, job: &MpiDbscan) -> DbscanResult {
    let cfg = job.cfg;
    let world = p.world();
    // Load + tag the partition (the original pays this I/O/format pass too).
    let load_bytes = partition.len() as u64 * 12;
    p.advance(p.cpu().serde_ns(load_bytes));
    let mut own: Vec<IdPoint> = partition
        .into_iter()
        .enumerate()
        .map(|(i, pt)| IdPoint { id: part_base + i as u64, p: pt })
        .collect();
    p.stream_bytes(own.len() as u64 * 20);

    let mut comm: Comm = world.clone();
    let mut planes: Vec<SplitPlane> = Vec::new();
    let mut level = 0usize;
    while comm.size() > 1 {
        // Subsample and agree on the split plane (same hashes as mega).
        let mut sampler = StreamSample::new(cfg.sample, cfg.seed.wrapping_add(level as u64));
        for ip in &own {
            sampler.push(ip);
        }
        p.stream_bytes(own.len() as u64 * 20);
        let sample = comm.allgather_shared(p, sampler.take(), Point3D::SIZE as u64);
        let plane = choose_split(&sample);

        // Partition local points and exchange: the lower half of the comm
        // handles the left side. Each member sends each destination its
        // share directly (alltoallv).
        let half = comm.size() / 2;
        let m = comm.size();
        let my_idx = comm.rank_of(p);
        let (mut left, mut right): (Vec<IdPoint>, Vec<IdPoint>) = (Vec::new(), Vec::new());
        for ip in own.drain(..) {
            if ip.p.axis(plane.axis) < plane.value {
                left.push(ip);
            } else {
                right.push(ip);
            }
        }
        p.compute_flops((left.len() + right.len()) as u64 * 2);
        p.stream_bytes((left.len() + right.len()) as u64 * 20);
        // Round-robin chunks per destination keep sizes balanced without a
        // second negotiation round.
        let dests_left = half;
        let dests_right = m - half;
        let tag = 100 + level as u64;
        for d in 0..m {
            let chunk: Vec<IdPoint> = if d < dests_left {
                left.iter().skip(d).step_by(dests_left).copied().collect()
            } else {
                right.iter().skip(d - dests_left).step_by(dests_right).copied().collect()
            };
            let bytes = chunk.len() as u64 * 20;
            p.send(comm.world_rank(d), tag, chunk, bytes);
        }
        let mut mine: Vec<IdPoint> = Vec::new();
        for s in 0..m {
            let chunk: Vec<IdPoint> = p.recv(comm.world_rank(s), tag);
            mine.extend(chunk);
        }
        own = mine;

        let go_left = my_idx < half;
        comm = comm.split(p, u64::from(!go_left), my_idx);
        planes.push(plane);
        level += 1;
    }
    world.barrier(p);
    finish(p, own, &planes, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{generate, HaloParams};
    use crate::verify::{rand_index, ref_dbscan};
    use megammap_cluster::{Cluster, ClusterSpec};
    use std::sync::Arc;

    #[test]
    fn matches_reference_and_mega() {
        let data = Arc::new(generate(HaloParams { n_points: 1200, ..Default::default() }));
        let cfg = DbscanConfig { eps: 8.0, min_pts: 8, ..Default::default() };
        let cluster = Cluster::new(ClusterSpec::new(2, 2).dram_per_node(1 << 30));
        let d2 = data.clone();
        let (outs, _) = cluster.run(move |p| {
            let part = d2.partition(p.rank(), p.nprocs()).to_vec();
            let base = (d2.points.len() * p.rank() / p.nprocs()) as u64;
            run(p, part, base, &MpiDbscan { cfg })
        });
        let expect = ref_dbscan(&data.points, cfg.eps, cfg.min_pts);
        let got: Vec<i64> = outs[0].labels.iter().map(|(_, l)| *l).collect();
        let ri = rand_index(&got, &expect);
        assert!(ri > 0.995, "rand index {ri}");
        assert_eq!(outs[0].n_clusters, 8);

        // The MegaMmap variant finds the same partition of the data.
        let mm = Cluster::new(ClusterSpec::new(2, 2).dram_per_node(1 << 30));
        let rt =
            megammap::Runtime::new(&mm, megammap::RuntimeConfig::default().with_page_size(4096));
        let obj = rt
            .backends()
            .open(&megammap_formats::DataUrl::parse("obj://dbs/mpi-cmp.bin").unwrap())
            .unwrap();
        data.write_object(obj.as_ref()).unwrap();
        let rt2 = rt.clone();
        let (mouts, _) = mm.run(move |p| {
            crate::dbscan::mega::run(
                p,
                &crate::dbscan::mega::MegaDbscan {
                    rt: &rt2,
                    url: "obj://dbs/mpi-cmp.bin".into(),
                    cfg,
                    pcache_bytes: 1 << 20,
                    tag: "mpi-cmp".into(),
                },
            )
        });
        let mega_labels: Vec<i64> = mouts[0].labels.iter().map(|(_, l)| *l).collect();
        let agreement = rand_index(&got, &mega_labels);
        assert!(agreement > 0.999, "mega vs mpi agreement {agreement}");
    }

    #[test]
    fn single_process_degenerates_to_plain_dbscan() {
        let data = generate(HaloParams { n_points: 400, ..Default::default() });
        let cfg = DbscanConfig { eps: 8.0, min_pts: 4, ..Default::default() };
        let cluster = Cluster::new(ClusterSpec::new(1, 1).dram_per_node(1 << 30));
        let pts = data.points.clone();
        let (outs, _) = cluster.run(move |p| run(p, pts.clone(), 0, &MpiDbscan { cfg }));
        let expect = ref_dbscan(&data.points, cfg.eps, cfg.min_pts);
        let got: Vec<i64> = outs[0].labels.iter().map(|(_, l)| *l).collect();
        assert!(rand_index(&got, &expect) > 0.999);
    }
}
