//! Gadget-4-like synthetic cosmology datasets.
//!
//! The paper clusters outputs of the Gadget-4 N-body/SPH code to "locate
//! halo formations". The artifact appendix notes their "internal kmeans
//! dataset generator ... outputs data in a similar format to Gadget and can
//! be used to accelerate reproducibility" — this module is that generator:
//! a seeded Gaussian-mixture of halos in 3-D position space, written to the
//! same kinds of containers (h5lite standing in for Gadget's HDF5 output,
//! pqlite for the parquet path of Listing 1).

use megammap_formats::h5lite::H5File;
use megammap_formats::posix::PosixObject;
use megammap_formats::pqlite::{Column, PqFile, Schema};
use megammap_formats::{DType, DataObject};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::point::Point3D;
use megammap::element::Element;

/// A generated dataset: particle positions plus ground-truth halo labels.
#[derive(Debug, Clone)]
pub struct HaloDataset {
    /// Particle positions.
    pub points: Vec<Point3D>,
    /// Ground-truth halo index per particle.
    pub labels: Vec<u32>,
    /// Halo centers.
    pub centers: Vec<Point3D>,
}

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct HaloParams {
    /// Number of particles.
    pub n_points: usize,
    /// Number of halos (clusters).
    pub n_halos: usize,
    /// RNG seed.
    pub seed: u64,
    /// Width of the simulation box.
    pub box_size: f32,
    /// Halo standard deviation (cluster tightness).
    pub sigma: f32,
    /// Minimum halo-center separation, in units of sigma.
    pub min_sep_sigmas: f32,
}

impl Default for HaloParams {
    fn default() -> Self {
        Self {
            n_points: 10_000,
            n_halos: 8,
            seed: 42,
            box_size: 1000.0,
            sigma: 4.0,
            min_sep_sigmas: 20.0,
        }
    }
}

/// Parameters for performance benchmarks: halo width scaled with the
/// point count so the epsilon-neighbourhood density stays bounded (a dense
/// gaussian of 10^5+ points would make every DBSCAN neighbourhood hold
/// thousands of points, which is neither realistic for halo catalogs nor
/// tractable for any DBSCAN).
pub fn bench_params(n_points: usize) -> HaloParams {
    let scale = (n_points as f32 / 1000.0).cbrt().max(1.0);
    HaloParams {
        n_points,
        sigma: 4.0 * scale,
        box_size: 1000.0 * scale.cbrt(),
        min_sep_sigmas: 8.0,
        ..Default::default()
    }
}

/// Generate a halo dataset. Deterministic in the seed.
pub fn generate(params: HaloParams) -> HaloDataset {
    let mut rng = StdRng::seed_from_u64(params.seed);
    // Spread halo centers far apart relative to sigma so clusters are
    // unambiguous (mirrors halo separation scales in cosmology outputs).
    let mut centers = Vec::with_capacity(params.n_halos);
    while centers.len() < params.n_halos {
        let c = Point3D::new(
            rng.gen_range(0.0..params.box_size),
            rng.gen_range(0.0..params.box_size),
            rng.gen_range(0.0..params.box_size),
        );
        let min_sep = params.min_sep_sigmas * params.sigma;
        if centers.iter().all(|o: &Point3D| c.dist(o) > min_sep) {
            centers.push(c);
        }
    }
    let mut points = Vec::with_capacity(params.n_points);
    let mut labels = Vec::with_capacity(params.n_points);
    for i in 0..params.n_points {
        let h = i % params.n_halos;
        let c = centers[h];
        // Box-Muller-ish gaussian offsets from the halo center.
        let g = |rng: &mut StdRng| {
            let u1: f32 = rng.gen_range(1e-6..1.0f32);
            let u2: f32 = rng.gen_range(0.0..1.0f32);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
        };
        points.push(Point3D::new(
            c.x + g(&mut rng) * params.sigma,
            c.y + g(&mut rng) * params.sigma,
            c.z + g(&mut rng) * params.sigma,
        ));
        labels.push(h as u32);
    }
    HaloDataset { points, labels, centers }
}

impl HaloDataset {
    /// Serialize positions row-major (x, y, z little-endian f32).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.points.len() * Point3D::SIZE];
        for (i, p) in self.points.iter().enumerate() {
            p.write_to(&mut out[i * Point3D::SIZE..(i + 1) * Point3D::SIZE]);
        }
        out
    }

    /// Write the dataset into a generic byte object (the `obj://` and
    /// `mem://` backing path).
    pub fn write_object(&self, obj: &dyn DataObject) -> std::io::Result<()> {
        obj.set_len(0)?;
        obj.write_at(0, &self.to_bytes())?;
        obj.flush()
    }

    /// Write a Gadget-style h5lite container: group `particles`, dataset
    /// `particles/pos` (flat xyz f32).
    pub fn write_h5(&self, path: &std::path::Path) -> std::io::Result<()> {
        let f = H5File::create(Box::new(PosixObject::open(path)?))?;
        let d = f.create_dataset("particles/pos", DType::F32, (self.points.len() * 3) as u64)?;
        d.write_at(0, &self.to_bytes())?;
        f.flush()
    }

    /// Write a parquet-style pqlite container with columns x, y, z (the
    /// `points.parquet` of Listing 1).
    pub fn write_pq(&self, path: &std::path::Path) -> std::io::Result<()> {
        let schema = Schema::new(vec![
            Column::new("x", DType::F32),
            Column::new("y", DType::F32),
            Column::new("z", DType::F32),
        ]);
        let f = PqFile::create(Box::new(PosixObject::open(path)?), schema)?;
        let col = |get: fn(&Point3D) -> f32| -> Vec<u8> {
            self.points.iter().flat_map(|p| get(p).to_le_bytes()).collect()
        };
        f.append_row_group(&[col(|p| p.x), col(|p| p.y), col(|p| p.z)])?;
        f.flush()
    }

    /// The slice of points owned by `rank` of `nprocs` (block partition,
    /// matching `Pgas`).
    pub fn partition(&self, rank: usize, nprocs: usize) -> &[Point3D] {
        let n = self.points.len();
        let lo = n * rank / nprocs;
        let hi = n * (rank + 1) / nprocs;
        &self.points[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megammap_formats::object::MemObject;

    #[test]
    fn deterministic_in_seed() {
        let a = generate(HaloParams { n_points: 100, ..Default::default() });
        let b = generate(HaloParams { n_points: 100, ..Default::default() });
        assert_eq!(a.points, b.points);
        let c = generate(HaloParams { n_points: 100, seed: 7, ..Default::default() });
        assert_ne!(a.points, c.points);
    }

    #[test]
    fn halos_are_tight_and_separated() {
        let d = generate(HaloParams { n_points: 800, ..Default::default() });
        // Every point is close to its own center and far from the others.
        for (p, &l) in d.points.iter().zip(&d.labels) {
            let own = p.dist(&d.centers[l as usize]);
            assert!(own < 8.0 * 4.0, "point strayed {own}");
            for (j, c) in d.centers.iter().enumerate() {
                if j != l as usize {
                    assert!(p.dist(c) > own, "nearest center must be the label");
                }
            }
        }
    }

    #[test]
    fn labels_round_robin() {
        let d = generate(HaloParams { n_points: 16, n_halos: 4, ..Default::default() });
        assert_eq!(&d.labels[..8], &[0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn bytes_round_trip() {
        let d = generate(HaloParams { n_points: 10, ..Default::default() });
        let bytes = d.to_bytes();
        assert_eq!(bytes.len(), 120);
        let p0 = Point3D::read_from(&bytes[..12]);
        assert_eq!(p0, d.points[0]);
    }

    #[test]
    fn object_write_matches() {
        let d = generate(HaloParams { n_points: 25, ..Default::default() });
        let obj = MemObject::new();
        d.write_object(&obj).unwrap();
        assert_eq!(obj.to_vec(), d.to_bytes());
    }

    #[test]
    fn h5_and_pq_containers_round_trip() {
        let dir = std::env::temp_dir().join(format!("mm-datagen-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let d = generate(HaloParams { n_points: 50, ..Default::default() });

        let h5path = dir.join("halos.h5");
        d.write_h5(&h5path).unwrap();
        let f = H5File::open(Box::new(PosixObject::open_existing(&h5path).unwrap())).unwrap();
        let ds = f.dataset("particles/pos").unwrap();
        assert_eq!(ds.len_elems().unwrap(), 150);
        assert_eq!(megammap_formats::object::read_all(&ds).unwrap(), d.to_bytes());

        let pqpath = dir.join("halos.pq");
        d.write_pq(&pqpath).unwrap();
        let f = PqFile::open(Box::new(PosixObject::open_existing(&pqpath).unwrap())).unwrap();
        assert_eq!(f.num_rows(), 50);
        let recs = megammap_formats::pqlite::PqRecords::new(f);
        assert_eq!(megammap_formats::object::read_all(&recs).unwrap(), d.to_bytes());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partitions_tile() {
        let d = generate(HaloParams { n_points: 103, ..Default::default() });
        let total: usize = (0..4).map(|r| d.partition(r, 4).len()).sum();
        assert_eq!(total, 103);
    }
}
