//! Dataset loading for the **baseline** (non-DSM) applications.
//!
//! This is exactly the code MegaMmap's vector abstraction removes from an
//! application: opening the container format, deserializing records,
//! computing the block partition for this rank, splitting train/test —
//! "in each case, all I/O partitioning, I/O compatibility, and most
//! messaging is removed" (Fig. 4). The MegaMmap variants never call into
//! this module; the Spark/MPI variants (and the Fig. 5 harness driving
//! them) do.

use std::io;
use std::path::Path;

use megammap_cluster::Proc;
use megammap_formats::h5lite::H5File;
use megammap_formats::object::DataObject;
use megammap_formats::posix::PosixObject;
use megammap_formats::pqlite::{PqFile, PqRecords};

use crate::point::Point3D;
use megammap::element::Element as _;

/// The block partition `[lo, hi)` of `n` records for `rank` of `nprocs`.
pub fn block_partition(n: usize, rank: usize, nprocs: usize) -> (usize, usize) {
    (n * rank / nprocs, n * (rank + 1) / nprocs)
}

/// Decode little-endian xyz f32 records from raw bytes.
pub fn decode_points(bytes: &[u8]) -> Vec<Point3D> {
    bytes.chunks_exact(Point3D::SIZE).map(Point3D::read_from).collect()
}

/// Decode little-endian u32 labels from raw bytes.
pub fn decode_labels(bytes: &[u8]) -> Vec<u32> {
    bytes.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().expect("chunked"))).collect()
}

/// Read this rank's partition of a raw binary point file, charging the
/// read + deserialization to the process clock.
pub fn load_points_bin(p: &Proc, path: &Path) -> io::Result<(Vec<Point3D>, u64)> {
    let obj = PosixObject::open_existing(path)?;
    let total = obj.len()? as usize / Point3D::SIZE;
    let (lo, hi) = block_partition(total, p.rank(), p.nprocs());
    let mut buf = vec![0u8; (hi - lo) * Point3D::SIZE];
    obj.read_at((lo * Point3D::SIZE) as u64, &mut buf)?;
    p.advance(p.cpu().serde_ns(buf.len() as u64));
    Ok((decode_points(&buf), lo as u64))
}

/// Read this rank's partition of a raw binary label file.
pub fn load_labels_bin(p: &Proc, path: &Path) -> io::Result<Vec<u32>> {
    let obj = PosixObject::open_existing(path)?;
    let total = obj.len()? as usize / 4;
    let (lo, hi) = block_partition(total, p.rank(), p.nprocs());
    let mut buf = vec![0u8; (hi - lo) * 4];
    obj.read_at((lo * 4) as u64, &mut buf)?;
    p.advance(p.cpu().serde_ns(buf.len() as u64));
    Ok(decode_labels(&buf))
}

/// Read this rank's partition from an h5lite container (Gadget-style
/// `particles/pos` dataset of flat xyz f32).
pub fn load_points_h5(p: &Proc, path: &Path, dataset: &str) -> io::Result<(Vec<Point3D>, u64)> {
    let f = H5File::open(Box::new(PosixObject::open_existing(path)?))?;
    let d = f.dataset(dataset)?;
    let total = d.len()? as usize / Point3D::SIZE;
    let (lo, hi) = block_partition(total, p.rank(), p.nprocs());
    let mut buf = vec![0u8; (hi - lo) * Point3D::SIZE];
    d.read_at((lo * Point3D::SIZE) as u64, &mut buf)?;
    p.advance(p.cpu().serde_ns(buf.len() as u64));
    Ok((decode_points(&buf), lo as u64))
}

/// Read this rank's partition from a pqlite container with x, y, z f32
/// columns (the `points.parquet` of Listing 1) — the column chunks are
/// gathered into row-major records.
pub fn load_points_pq(p: &Proc, path: &Path) -> io::Result<(Vec<Point3D>, u64)> {
    let f = PqFile::open(Box::new(PosixObject::open_existing(path)?))?;
    let recs = PqRecords::new(f);
    let total = recs.len()? as usize / Point3D::SIZE;
    let (lo, hi) = block_partition(total, p.rank(), p.nprocs());
    let mut buf = vec![0u8; (hi - lo) * Point3D::SIZE];
    recs.read_at((lo * Point3D::SIZE) as u64, &mut buf)?;
    p.advance(p.cpu().serde_ns(buf.len() as u64));
    Ok((decode_points(&buf), lo as u64))
}

/// Stratified-ish 80/20 split over a partition: returns (train, test)
/// index vectors relative to the partition, deterministic in the global
/// indices so all processes agree on membership.
pub fn train_test_split(part_base: u64, n: usize, seed: u64) -> (Vec<usize>, Vec<usize>) {
    let mut train = Vec::with_capacity(n * 4 / 5);
    let mut test = Vec::with_capacity(n / 5);
    for i in 0..n {
        let h = megammap::tx::splitmix64(seed ^ 0x7A ^ (part_base + i as u64));
        if !h.is_multiple_of(5) {
            train.push(i);
        } else {
            test.push(i);
        }
    }
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{generate, HaloParams};
    use megammap_cluster::{Cluster, ClusterSpec};

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mm-loader-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn partitions_tile_and_are_monotone() {
        let mut end = 0;
        for r in 0..5 {
            let (lo, hi) = block_partition(103, r, 5);
            assert_eq!(lo, end);
            end = hi;
        }
        assert_eq!(end, 103);
    }

    #[test]
    fn bin_loader_partitions_match_source() {
        let d = generate(HaloParams { n_points: 100, ..Default::default() });
        let dir = tmpdir();
        let path = dir.join("pts.bin");
        std::fs::write(&path, d.to_bytes()).unwrap();
        let cluster = Cluster::new(ClusterSpec::new(2, 2).dram_per_node(1 << 30));
        let pts = d.points.clone();
        let (outs, _) = cluster.run(move |p| {
            let (part, base) = load_points_bin(p, &path).unwrap();
            let t0 = p.now();
            assert!(t0 > 0, "loading must cost time");
            (part, base)
        });
        let mut rebuilt: Vec<(Vec<Point3D>, u64)> = outs;
        rebuilt.sort_by_key(|(_, b)| *b);
        let all: Vec<Point3D> = rebuilt.into_iter().flat_map(|(v, _)| v).collect();
        assert_eq!(all, pts);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn h5_and_pq_loaders_agree_with_bin() {
        let d = generate(HaloParams { n_points: 64, ..Default::default() });
        let dir = tmpdir();
        let bin = dir.join("a.bin");
        std::fs::write(&bin, d.to_bytes()).unwrap();
        let h5 = dir.join("a.h5");
        d.write_h5(&h5).unwrap();
        let pq = dir.join("a.pq");
        d.write_pq(&pq).unwrap();
        let cluster = Cluster::new(ClusterSpec::new(1, 2).dram_per_node(1 << 30));
        let (outs, _) = cluster.run(move |p| {
            let (a, _) = load_points_bin(p, &bin).unwrap();
            let (b, _) = load_points_h5(p, &h5, "particles/pos").unwrap();
            let (c, _) = load_points_pq(p, &pq).unwrap();
            a == b && b == c
        });
        assert!(outs.iter().all(|&ok| ok));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn split_is_80_20_and_consistent() {
        let (train, test) = train_test_split(1000, 10_000, 7);
        assert_eq!(train.len() + test.len(), 10_000);
        let rate = train.len() as f64 / 10_000.0;
        assert!((rate - 0.8).abs() < 0.02, "rate {rate}");
        // Same global indices → same membership regardless of partitioning.
        let (train2, _) = train_test_split(1000, 10_000, 7);
        assert_eq!(train, train2);
    }
}
