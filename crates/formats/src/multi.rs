//! Concatenation of multiple objects into one logical object.
//!
//! Backs the `file:///dir/part.*` form: each matched file contributes its
//! bytes in sorted-name order, and the result behaves as one flat
//! [`DataObject`]. Writes land in whichever member covers the offset;
//! growth appends to the final member.

use std::io;

use crate::object::DataObject;

/// One [`DataObject`] made of several members laid end to end.
pub struct MultiObject {
    members: Vec<Box<dyn DataObject>>,
}

impl MultiObject {
    /// Combine `members`; the logical object is their concatenation.
    pub fn new(members: Vec<Box<dyn DataObject>>) -> io::Result<Self> {
        if members.is_empty() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "no members"));
        }
        Ok(Self { members })
    }

    /// Member count.
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    /// Per-member lengths (recomputed, so members may grow independently).
    fn lens(&self) -> io::Result<Vec<u64>> {
        self.members.iter().map(|m| m.len()).collect()
    }
}

impl DataObject for MultiObject {
    fn len(&self) -> io::Result<u64> {
        Ok(self.lens()?.iter().sum())
    }

    fn read_at(&self, off: u64, buf: &mut [u8]) -> io::Result<usize> {
        let lens = self.lens()?;
        let mut base = 0u64;
        let mut done = 0usize;
        for (m, &len) in self.members.iter().zip(&lens) {
            let end = base + len;
            if done < buf.len() && off + done as u64 >= base && off + (done as u64) < end {
                let local = off + done as u64 - base;
                let want = (buf.len() - done).min((len - local) as usize);
                let n = m.read_at(local, &mut buf[done..done + want])?;
                done += n;
                if n < want {
                    break;
                }
            }
            base = end;
            if done == buf.len() {
                break;
            }
        }
        Ok(done)
    }

    fn write_at(&self, off: u64, data: &[u8]) -> io::Result<()> {
        let lens = self.lens()?;
        let total: u64 = lens.iter().sum();
        let mut base = 0u64;
        let mut done = 0usize;
        for (i, (m, &len)) in self.members.iter().zip(&lens).enumerate() {
            let is_last = i == self.members.len() - 1;
            let end = base + len;
            let cur = off + done as u64;
            if done < data.len() && cur >= base && (cur < end || (is_last && cur >= total)) {
                let local = cur - base;
                let want = if is_last {
                    data.len() - done
                } else {
                    (data.len() - done).min((end - cur) as usize)
                };
                m.write_at(local, &data[done..done + want])?;
                done += want;
            }
            base = end;
            if done == data.len() {
                break;
            }
        }
        if done < data.len() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "multi write left a gap"));
        }
        Ok(())
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        // Shrink from the tail / grow the final member.
        let lens = self.lens()?;
        let total: u64 = lens.iter().sum();
        if len >= total {
            let last = self.members.last().expect("nonempty");
            let last_len = *lens.last().expect("nonempty");
            last.set_len(last_len + (len - total))
        } else {
            let mut remaining = len;
            for (m, &l) in self.members.iter().zip(&lens) {
                let keep = remaining.min(l);
                m.set_len(keep)?;
                remaining -= keep;
            }
            Ok(())
        }
    }

    fn flush(&self) -> io::Result<()> {
        for m in &self.members {
            m.flush()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{read_all, MemObject};

    fn multi(parts: &[&[u8]]) -> MultiObject {
        MultiObject::new(
            parts
                .iter()
                .map(|p| Box::new(MemObject::from_vec(p.to_vec())) as Box<dyn DataObject>)
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn concatenated_view() {
        let m = multi(&[b"abc", b"defg", b"h"]);
        assert_eq!(m.len().unwrap(), 8);
        assert_eq!(read_all(&m).unwrap(), b"abcdefgh");
    }

    #[test]
    fn read_spanning_members() {
        let m = multi(&[b"abc", b"defg", b"h"]);
        let mut buf = [0u8; 4];
        assert_eq!(m.read_at(2, &mut buf).unwrap(), 4);
        assert_eq!(&buf, b"cdef");
    }

    #[test]
    fn write_spanning_members() {
        let m = multi(&[b"abc", b"defg", b"h"]);
        m.write_at(1, b"XYZW").unwrap();
        assert_eq!(read_all(&m).unwrap(), b"aXYZWfgh");
    }

    #[test]
    fn growth_appends_to_last_member() {
        let m = multi(&[b"ab", b"cd"]);
        m.write_at(4, b"EF").unwrap();
        assert_eq!(read_all(&m).unwrap(), b"abcdEF");
        m.set_len(8).unwrap();
        assert_eq!(m.len().unwrap(), 8);
        m.set_len(3).unwrap();
        assert_eq!(read_all(&m).unwrap(), b"abc");
    }

    #[test]
    fn empty_member_list_rejected() {
        assert!(MultiObject::new(vec![]).is_err());
    }

    #[test]
    fn read_past_end_short() {
        let m = multi(&[b"ab"]);
        let mut buf = [0u8; 8];
        assert_eq!(m.read_at(1, &mut buf).unwrap(), 1);
        assert_eq!(buf[0], b'b');
    }
}
