//! Primitive element types for typed datasets.

use std::fmt;

/// Element type of an `h5lite` dataset or `pqlite` column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// Unsigned byte.
    U8,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// 64-bit unsigned integer.
    U64,
    /// 32-bit float.
    F32,
    /// 64-bit float.
    F64,
}

impl DType {
    /// Size in bytes of one element.
    pub const fn size(self) -> usize {
        match self {
            DType::U8 => 1,
            DType::I32 | DType::F32 => 4,
            DType::I64 | DType::U64 | DType::F64 => 8,
        }
    }

    /// Stable on-disk tag.
    pub(crate) const fn tag(self) -> u8 {
        match self {
            DType::U8 => 0,
            DType::I32 => 1,
            DType::I64 => 2,
            DType::U64 => 3,
            DType::F32 => 4,
            DType::F64 => 5,
        }
    }

    /// Decode an on-disk tag.
    pub(crate) fn from_tag(t: u8) -> Option<Self> {
        Some(match t {
            0 => DType::U8,
            1 => DType::I32,
            2 => DType::I64,
            3 => DType::U64,
            4 => DType::F32,
            5 => DType::F64,
            _ => return None,
        })
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::U8 => "u8",
            DType::I32 => "i32",
            DType::I64 => "i64",
            DType::U64 => "u64",
            DType::F32 => "f32",
            DType::F64 => "f64",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::U8.size(), 1);
        assert_eq!(DType::F32.size(), 4);
        assert_eq!(DType::F64.size(), 8);
    }

    #[test]
    fn tag_round_trip() {
        for d in [DType::U8, DType::I32, DType::I64, DType::U64, DType::F32, DType::F64] {
            assert_eq!(DType::from_tag(d.tag()), Some(d));
        }
        assert_eq!(DType::from_tag(99), None);
    }
}
