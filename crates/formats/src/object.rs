//! The byte-addressable persistent-object abstraction.
//!
//! Every stager backend resolves to a [`DataObject`]: one named, growable,
//! byte-addressable object supporting ranged reads and writes. The DSM's
//! pages map 1:1 onto ranges of this flat space; the format-specific
//! backends (h5lite datasets, pqlite record views) translate the flat space
//! into their internal layout — which is exactly what lets MegaMmap
//! "transparently load content from storage in the format applications
//! expect to operate on".

use std::io;
use std::sync::Arc;

use parking_lot::RwLock;

/// A named, growable, byte-addressable persistent object.
pub trait DataObject: Send + Sync {
    /// Current logical size in bytes.
    fn len(&self) -> io::Result<u64>;

    /// Whether the object is empty.
    fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Read `buf.len()` bytes at `off`. Short reads past EOF fill with the
    /// available bytes and return the count.
    fn read_at(&self, off: u64, buf: &mut [u8]) -> io::Result<usize>;

    /// Write `data` at `off`, growing the object if needed.
    fn write_at(&self, off: u64, data: &[u8]) -> io::Result<()>;

    /// Set the logical size (truncate or zero-extend).
    fn set_len(&self, len: u64) -> io::Result<()>;

    /// Persist buffered state.
    fn flush(&self) -> io::Result<()>;
}

/// Read the whole object into a vector (tests & small staging reads).
pub fn read_all(obj: &dyn DataObject) -> io::Result<Vec<u8>> {
    let len = obj.len()? as usize;
    let mut buf = vec![0u8; len];
    let n = obj.read_at(0, &mut buf)?;
    buf.truncate(n);
    Ok(buf)
}

/// A volatile in-memory object (the `mem://` scheme and test double).
#[derive(Debug, Default, Clone)]
pub struct MemObject {
    data: Arc<RwLock<Vec<u8>>>,
}

impl MemObject {
    /// Create an empty in-memory object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create from initial contents.
    pub fn from_vec(v: Vec<u8>) -> Self {
        Self { data: Arc::new(RwLock::new(v)) }
    }

    /// Snapshot the contents.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.read().clone()
    }
}

impl DataObject for MemObject {
    fn len(&self) -> io::Result<u64> {
        Ok(self.data.read().len() as u64)
    }

    fn read_at(&self, off: u64, buf: &mut [u8]) -> io::Result<usize> {
        let data = self.data.read();
        let off = off as usize;
        if off >= data.len() {
            return Ok(0);
        }
        let n = buf.len().min(data.len() - off);
        buf[..n].copy_from_slice(&data[off..off + n]);
        Ok(n)
    }

    fn write_at(&self, off: u64, src: &[u8]) -> io::Result<()> {
        let mut data = self.data.write();
        let end = off as usize + src.len();
        if end > data.len() {
            data.resize(end, 0);
        }
        data[off as usize..end].copy_from_slice(src);
        Ok(())
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.data.write().resize(len as usize, 0);
        Ok(())
    }

    fn flush(&self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_object_ranged_io() {
        let o = MemObject::new();
        o.write_at(4, b"abcd").unwrap();
        assert_eq!(o.len().unwrap(), 8);
        let mut buf = [0u8; 8];
        let n = o.read_at(0, &mut buf).unwrap();
        assert_eq!(n, 8);
        assert_eq!(&buf, b"\0\0\0\0abcd");
    }

    #[test]
    fn short_read_past_eof() {
        let o = MemObject::from_vec(vec![1, 2, 3]);
        let mut buf = [0u8; 10];
        assert_eq!(o.read_at(2, &mut buf).unwrap(), 1);
        assert_eq!(buf[0], 3);
        assert_eq!(o.read_at(100, &mut buf).unwrap(), 0);
    }

    #[test]
    fn set_len_truncates_and_extends() {
        let o = MemObject::from_vec(vec![9; 10]);
        o.set_len(4).unwrap();
        assert_eq!(o.to_vec(), vec![9; 4]);
        o.set_len(6).unwrap();
        assert_eq!(o.to_vec(), vec![9, 9, 9, 9, 0, 0]);
    }

    #[test]
    fn read_all_helper() {
        let o = MemObject::from_vec(vec![5; 17]);
        assert_eq!(read_all(&o).unwrap(), vec![5; 17]);
    }

    #[test]
    fn clones_share_state() {
        let a = MemObject::new();
        let b = a.clone();
        a.write_at(0, b"xy").unwrap();
        assert_eq!(b.to_vec(), b"xy");
    }
}
