//! Resolving vector-key URLs to opened objects.
//!
//! [`Backends`] is the stager's dispatch table: given a parsed [`DataUrl`]
//! it opens (or creates, where the format permits) the backing
//! [`DataObject`]. One `Backends` instance is shared by a MegaMmap runtime;
//! its `mem://` registry and object store are process-local state, its
//! `file://`/`hdf5://`/`parquet://` schemes hit the real filesystem.

use std::collections::HashMap;
use std::io;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::h5lite::H5File;
use crate::multi::MultiObject;
use crate::object::{DataObject, MemObject};
use crate::objstore::ObjStore;
use crate::posix::PosixObject;
use crate::pqlite::{PqFile, PqRecords};
use crate::url::{DataUrl, Scheme};
use crate::{dtype::DType, glob};

/// Backend dispatch for the data stager.
#[derive(Clone, Default)]
pub struct Backends {
    mem: Arc<Mutex<HashMap<String, MemObject>>>,
    objstore: ObjStore,
}

impl Backends {
    /// Create an empty backend set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The S3-like object store behind `obj://` URLs.
    pub fn objstore(&self) -> &ObjStore {
        &self.objstore
    }

    /// Open the object a URL names, creating it where the format permits
    /// (plain files, h5lite datasets, mem and obj objects). Parquet objects
    /// must already exist — records views cannot invent a schema.
    pub fn open(&self, url: &DataUrl) -> io::Result<Box<dyn DataObject>> {
        match url.scheme {
            Scheme::Mem => {
                let mut reg = self.mem.lock();
                Ok(Box::new(reg.entry(url.path.clone()).or_default().clone()))
            }
            Scheme::Obj => {
                let (bucket, key) =
                    url.path.trim_start_matches('/').split_once('/').ok_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidInput, "obj:// needs bucket/key")
                    })?;
                Ok(Box::new(self.objstore.open(bucket, key)))
            }
            Scheme::File => {
                if url.is_glob() {
                    let paths = glob::expand(&url.path)?;
                    let members: io::Result<Vec<Box<dyn DataObject>>> = paths
                        .iter()
                        .map(|p| {
                            PosixObject::open_existing(p)
                                .map(|o| Box::new(o) as Box<dyn DataObject>)
                        })
                        .collect();
                    Ok(Box::new(MultiObject::new(members?)?))
                } else {
                    Ok(Box::new(PosixObject::open(&url.path)?))
                }
            }
            Scheme::Hdf5 => {
                let file = H5File::open_or_create(Box::new(PosixObject::open(&url.path)?))?;
                let dset_name = url.params.clone().unwrap_or_else(|| "data".to_string());
                let dset = if file.has_dataset(&dset_name) {
                    file.dataset(&dset_name)?
                } else {
                    let d = file.create_dataset(&dset_name, DType::U8, 0)?;
                    file.flush()?;
                    d
                };
                Ok(Box::new(dset))
            }
            Scheme::Parquet => {
                let file = PqFile::open(Box::new(PosixObject::open_existing(&url.path)?))?;
                Ok(Box::new(PqRecords::new(file)))
            }
        }
    }

    /// Whether the URL currently resolves to existing data.
    pub fn exists(&self, url: &DataUrl) -> bool {
        match url.scheme {
            Scheme::Mem => self.mem.lock().contains_key(&url.path),
            Scheme::Obj => url
                .path
                .trim_start_matches('/')
                .split_once('/')
                .map(|(b, k)| self.objstore.get(b, k).is_some())
                .unwrap_or(false),
            Scheme::File => {
                if url.is_glob() {
                    glob::expand(&url.path).is_ok()
                } else {
                    url.fs_path().exists()
                }
            }
            Scheme::Hdf5 | Scheme::Parquet => url.fs_path().exists(),
        }
    }

    /// Drop a `mem://` object (volatile vector destruction).
    pub fn delete_mem(&self, name: &str) -> bool {
        self.mem.lock().remove(name).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::read_all;

    fn tmp(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join("mm-factory-tests");
        std::fs::create_dir_all(&d).unwrap();
        d.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn mem_scheme_is_shared_and_deletable() {
        let b = Backends::new();
        let u = DataUrl::mem("scratch");
        let o1 = b.open(&u).unwrap();
        o1.write_at(0, b"x").unwrap();
        let o2 = b.open(&u).unwrap();
        assert_eq!(read_all(o2.as_ref()).unwrap(), b"x");
        assert!(b.exists(&u));
        assert!(b.delete_mem("scratch"));
        assert!(!b.exists(&u));
    }

    #[test]
    fn obj_scheme_bucket_key() {
        let b = Backends::new();
        let u = DataUrl::parse("obj://bucket/some/key.bin").unwrap();
        let o = b.open(&u).unwrap();
        o.write_at(0, b"payload").unwrap();
        assert!(b.exists(&u));
        assert_eq!(b.objstore().list("bucket", ""), vec!["some/key.bin"]);
        assert!(b.open(&DataUrl::parse("obj://nokeypart").unwrap()).is_err());
    }

    #[test]
    fn file_scheme_round_trip() {
        let b = Backends::new();
        let p = tmp("file-rt.bin");
        let u = DataUrl::parse(&format!("file://{}", p.display())).unwrap();
        let o = b.open(&u).unwrap();
        o.set_len(0).unwrap();
        o.write_at(0, b"disk").unwrap();
        o.flush().unwrap();
        assert!(b.exists(&u));
        assert_eq!(std::fs::read(&p).unwrap(), b"disk");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn hdf5_scheme_creates_dataset() {
        let b = Backends::new();
        let p = tmp("fac.h5");
        std::fs::remove_file(&p).ok();
        let u = DataUrl::parse(&format!("hdf5://{}:grp", p.display())).unwrap();
        let o = b.open(&u).unwrap();
        o.write_at(0, b"hdf5 bytes").unwrap();
        o.flush().unwrap();
        // Reopen through the factory and read back.
        let o2 = b.open(&u).unwrap();
        assert_eq!(read_all(o2.as_ref()).unwrap(), b"hdf5 bytes");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn parquet_requires_existing_file() {
        let b = Backends::new();
        let u = DataUrl::parse("parquet:///does/not/exist.pq").unwrap();
        assert!(b.open(&u).is_err());
    }

    #[test]
    fn glob_file_scheme() {
        let b = Backends::new();
        let d = std::env::temp_dir().join(format!("mm-fac-glob-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        std::fs::write(d.join("part.0"), b"AB").unwrap();
        std::fs::write(d.join("part.1"), b"CD").unwrap();
        let u = DataUrl::parse(&format!("file://{}/part.*", d.display())).unwrap();
        let o = b.open(&u).unwrap();
        assert_eq!(read_all(o.as_ref()).unwrap(), b"ABCD");
        std::fs::remove_dir_all(&d).ok();
    }
}
