//! `h5lite` — a hierarchical container format standing in for HDF5.
//!
//! A container holds named, typed, growable datasets organized in
//! slash-separated groups (`"particles/position"`). The on-disk layout is
//! real and self-describing:
//!
//! ```text
//! [8 B magic "H5LITE\x00\x01"]
//! [dataset extents ...]                  (appended as datasets grow)
//! [TOC bytes][toc_len u64][toc_off u64][8 B magic "H5LTOC\x00\x01"]
//! ```
//!
//! Datasets live in contiguous extents; growing past an extent's capacity
//! relocates the dataset to a fresh extent at the end of the data region
//! (the old extent is leaked until a future compaction — the classic
//! append-only container trade-off). [`H5File::flush`] rewrites the TOC and
//! footer, making the container reopenable.

use std::collections::BTreeMap;
use std::io;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::dtype::DType;
use crate::object::DataObject;

const MAGIC: &[u8; 8] = b"H5LITE\x00\x01";
const TOC_MAGIC: &[u8; 8] = b"H5LTOC\x00\x01";
const HEADER_LEN: u64 = 8;
const FOOTER_LEN: u64 = 8 + 8 + 8; // toc_len + toc_off + magic

fn err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

#[derive(Debug, Clone)]
struct DsetMeta {
    dtype: DType,
    /// Logical length in bytes.
    len: u64,
    /// Extent start offset in the file.
    off: u64,
    /// Extent capacity in bytes.
    cap: u64,
}

struct Inner {
    obj: Box<dyn DataObject>,
    toc: RwLock<Toc>,
}

#[derive(Default)]
struct Toc {
    dsets: BTreeMap<String, DsetMeta>,
    /// First byte past the last extent — where new extents are appended.
    data_end: u64,
    /// Whether in-memory state is ahead of the on-disk TOC.
    dirty: bool,
}

/// An open `h5lite` container.
#[derive(Clone)]
pub struct H5File {
    inner: Arc<Inner>,
}

impl H5File {
    /// Create a fresh container on `obj` (truncates existing content).
    pub fn create(obj: Box<dyn DataObject>) -> io::Result<Self> {
        obj.set_len(0)?;
        obj.write_at(0, MAGIC)?;
        let file = Self {
            inner: Arc::new(Inner {
                obj,
                toc: RwLock::new(Toc { data_end: HEADER_LEN, dirty: true, ..Default::default() }),
            }),
        };
        file.flush()?;
        Ok(file)
    }

    /// Open an existing container, reading its TOC.
    pub fn open(obj: Box<dyn DataObject>) -> io::Result<Self> {
        let len = obj.len()?;
        if len < HEADER_LEN + FOOTER_LEN {
            return Err(err("h5lite: file too small"));
        }
        let mut head = [0u8; 8];
        obj.read_at(0, &mut head)?;
        if &head != MAGIC {
            return Err(err("h5lite: bad header magic"));
        }
        let mut footer = [0u8; FOOTER_LEN as usize];
        obj.read_at(len - FOOTER_LEN, &mut footer)?;
        if &footer[16..24] != TOC_MAGIC {
            return Err(err("h5lite: bad footer magic"));
        }
        let toc_len = u64::from_le_bytes(footer[0..8].try_into().unwrap());
        let toc_off = u64::from_le_bytes(footer[8..16].try_into().unwrap());
        if toc_off + toc_len + FOOTER_LEN != len {
            return Err(err("h5lite: inconsistent footer"));
        }
        let mut toc_bytes = vec![0u8; toc_len as usize];
        obj.read_at(toc_off, &mut toc_bytes)?;
        let dsets = decode_toc(&toc_bytes)?;
        let data_end = toc_off;
        Ok(Self {
            inner: Arc::new(Inner { obj, toc: RwLock::new(Toc { dsets, data_end, dirty: false }) }),
        })
    }

    /// Open if a valid container exists, otherwise create.
    pub fn open_or_create(obj: Box<dyn DataObject>) -> io::Result<Self> {
        if obj.len()? >= HEADER_LEN + FOOTER_LEN {
            // Probe the magic before committing to open.
            let mut head = [0u8; 8];
            obj.read_at(0, &mut head)?;
            if &head == MAGIC {
                return Self::open(obj);
            }
        }
        Self::create(obj)
    }

    /// Create a dataset of `dtype` with `len_elems` elements (zero-filled).
    /// Errors if the name exists.
    pub fn create_dataset(
        &self,
        name: &str,
        dtype: DType,
        len_elems: u64,
    ) -> io::Result<H5Dataset> {
        let bytes = len_elems * dtype.size() as u64;
        let mut toc = self.inner.toc.write();
        if toc.dsets.contains_key(name) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("h5lite: dataset {name:?} exists"),
            ));
        }
        let cap = bytes.next_power_of_two().max(64);
        let off = toc.data_end;
        toc.data_end += cap;
        // Zero-fill the logical extent so reads of fresh data are defined.
        if bytes > 0 {
            self.inner.obj.write_at(off, &vec![0u8; bytes as usize])?;
        }
        toc.dsets.insert(name.to_string(), DsetMeta { dtype, len: bytes, off, cap });
        toc.dirty = true;
        drop(toc);
        Ok(H5Dataset { file: self.clone(), name: name.to_string() })
    }

    /// Open an existing dataset by name.
    pub fn dataset(&self, name: &str) -> io::Result<H5Dataset> {
        let toc = self.inner.toc.read();
        if !toc.dsets.contains_key(name) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("h5lite: no dataset {name:?}"),
            ));
        }
        Ok(H5Dataset { file: self.clone(), name: name.to_string() })
    }

    /// Whether a dataset exists.
    pub fn has_dataset(&self, name: &str) -> bool {
        self.inner.toc.read().dsets.contains_key(name)
    }

    /// Names of all datasets under `group` (prefix match on `group/`);
    /// pass `""` for all.
    pub fn list(&self, group: &str) -> Vec<String> {
        let prefix = if group.is_empty() { String::new() } else { format!("{group}/") };
        self.inner.toc.read().dsets.keys().filter(|k| k.starts_with(&prefix)).cloned().collect()
    }

    /// Delete a dataset (its extent is leaked until compaction).
    pub fn delete_dataset(&self, name: &str) -> io::Result<()> {
        let mut toc = self.inner.toc.write();
        toc.dsets
            .remove(name)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))?;
        toc.dirty = true;
        Ok(())
    }

    /// Persist the TOC and footer; afterwards the container can be reopened.
    pub fn flush(&self) -> io::Result<()> {
        let mut toc = self.inner.toc.write();
        let toc_bytes = encode_toc(&toc.dsets);
        let toc_off = toc.data_end;
        self.inner.obj.write_at(toc_off, &toc_bytes)?;
        let mut footer = Vec::with_capacity(FOOTER_LEN as usize);
        footer.extend_from_slice(&(toc_bytes.len() as u64).to_le_bytes());
        footer.extend_from_slice(&toc_off.to_le_bytes());
        footer.extend_from_slice(TOC_MAGIC);
        self.inner.obj.write_at(toc_off + toc_bytes.len() as u64, &footer)?;
        self.inner.obj.set_len(toc_off + toc_bytes.len() as u64 + FOOTER_LEN)?;
        self.inner.obj.flush()?;
        toc.dirty = false;
        Ok(())
    }

    fn meta(&self, name: &str) -> io::Result<DsetMeta> {
        self.inner
            .toc
            .read()
            .dsets
            .get(name)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))
    }
}

fn encode_toc(dsets: &BTreeMap<String, DsetMeta>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(dsets.len() as u32).to_le_bytes());
    for (name, m) in dsets {
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.push(m.dtype.tag());
        out.extend_from_slice(&m.len.to_le_bytes());
        out.extend_from_slice(&m.off.to_le_bytes());
        out.extend_from_slice(&m.cap.to_le_bytes());
    }
    out
}

fn decode_toc(bytes: &[u8]) -> io::Result<BTreeMap<String, DsetMeta>> {
    let mut dsets = BTreeMap::new();
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> io::Result<&[u8]> {
        if *pos + n > bytes.len() {
            return Err(err("h5lite: truncated TOC"));
        }
        let s = &bytes[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };
    let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
    for _ in 0..count {
        let nlen = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
        let name = String::from_utf8(take(&mut pos, nlen)?.to_vec())
            .map_err(|_| err("h5lite: non-UTF8 dataset name"))?;
        let dtype = DType::from_tag(take(&mut pos, 1)?[0]).ok_or_else(|| err("bad dtype"))?;
        let len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let off = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let cap = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        dsets.insert(name, DsetMeta { dtype, len, off, cap });
    }
    Ok(dsets)
}

/// A handle on one dataset within an [`H5File`].
#[derive(Clone)]
pub struct H5Dataset {
    file: H5File,
    name: String,
}

impl H5Dataset {
    /// Dataset name (full group path).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Element type.
    pub fn dtype(&self) -> io::Result<DType> {
        Ok(self.file.meta(&self.name)?.dtype)
    }

    /// Length in elements.
    pub fn len_elems(&self) -> io::Result<u64> {
        let m = self.file.meta(&self.name)?;
        Ok(m.len / m.dtype.size() as u64)
    }

    /// Grow or shrink to `bytes` logical bytes, relocating if needed.
    fn ensure_capacity(&self, bytes: u64) -> io::Result<()> {
        let mut toc = self.file.inner.toc.write();
        let m = toc.dsets.get(&self.name).ok_or_else(|| err("dataset vanished"))?.clone();
        if bytes <= m.cap {
            return Ok(());
        }
        let new_cap = bytes.next_power_of_two();
        let new_off = toc.data_end;
        toc.data_end += new_cap;
        // Relocate existing bytes.
        if m.len > 0 {
            let mut buf = vec![0u8; m.len as usize];
            self.file.inner.obj.read_at(m.off, &mut buf)?;
            self.file.inner.obj.write_at(new_off, &buf)?;
        }
        let entry = toc.dsets.get_mut(&self.name).unwrap();
        entry.off = new_off;
        entry.cap = new_cap;
        toc.dirty = true;
        Ok(())
    }
}

impl DataObject for H5Dataset {
    fn len(&self) -> io::Result<u64> {
        Ok(self.file.meta(&self.name)?.len)
    }

    fn read_at(&self, off: u64, buf: &mut [u8]) -> io::Result<usize> {
        let m = self.file.meta(&self.name)?;
        if off >= m.len {
            return Ok(0);
        }
        let n = buf.len().min((m.len - off) as usize);
        self.file.inner.obj.read_at(m.off + off, &mut buf[..n])?;
        Ok(n)
    }

    fn write_at(&self, off: u64, data: &[u8]) -> io::Result<()> {
        let end = off + data.len() as u64;
        self.ensure_capacity(end)?;
        let mut toc = self.file.inner.toc.write();
        let m = toc.dsets.get_mut(&self.name).ok_or_else(|| err("dataset vanished"))?;
        // Zero-fill any gap between the logical end and the write start:
        // the extent may hold stale bytes (from a truncation or the region
        // a relocation landed on) that must never become readable.
        if off > m.len {
            self.file.inner.obj.write_at(m.off + m.len, &vec![0u8; (off - m.len) as usize])?;
        }
        self.file.inner.obj.write_at(m.off + off, data)?;
        if end > m.len {
            m.len = end;
            toc.dirty = true;
        }
        Ok(())
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.ensure_capacity(len)?;
        let mut toc = self.file.inner.toc.write();
        let m = toc.dsets.get_mut(&self.name).ok_or_else(|| err("dataset vanished"))?;
        let old = m.len;
        m.len = len;
        let (off, dlen) = (m.off, m.len);
        toc.dirty = true;
        drop(toc);
        if len > old {
            // Zero-extend for defined reads.
            self.file.inner.obj.write_at(off + old, &vec![0u8; (dlen - old) as usize])?;
        }
        Ok(())
    }

    fn flush(&self) -> io::Result<()> {
        self.file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{read_all, MemObject};

    fn mem_file() -> (H5File, MemObject) {
        let obj = MemObject::new();
        let f = H5File::create(Box::new(obj.clone())).unwrap();
        (f, obj)
    }

    #[test]
    fn create_write_read() {
        let (f, _) = mem_file();
        let d = f.create_dataset("grp/data", DType::F32, 4).unwrap();
        d.write_at(0, &42f32.to_le_bytes()).unwrap();
        let mut buf = [0u8; 4];
        d.read_at(0, &mut buf).unwrap();
        assert_eq!(f32::from_le_bytes(buf), 42.0);
        assert_eq!(d.len_elems().unwrap(), 4);
        assert_eq!(d.dtype().unwrap(), DType::F32);
    }

    #[test]
    fn reopen_round_trip() {
        let obj = MemObject::new();
        {
            let f = H5File::create(Box::new(obj.clone())).unwrap();
            let d = f.create_dataset("particles/pos", DType::F64, 3).unwrap();
            d.write_at(0, &1.5f64.to_le_bytes()).unwrap();
            d.write_at(16, &2.5f64.to_le_bytes()).unwrap();
            f.flush().unwrap();
        }
        let f = H5File::open(Box::new(obj)).unwrap();
        let d = f.dataset("particles/pos").unwrap();
        assert_eq!(d.len_elems().unwrap(), 3);
        let mut buf = [0u8; 8];
        d.read_at(16, &mut buf).unwrap();
        assert_eq!(f64::from_le_bytes(buf), 2.5);
    }

    #[test]
    fn growth_relocates_and_preserves_data() {
        let (f, _) = mem_file();
        let d = f.create_dataset("x", DType::U8, 16).unwrap();
        d.write_at(0, &[7u8; 16]).unwrap();
        // Grow far past the initial capacity.
        d.write_at(4000, &[9u8; 8]).unwrap();
        assert_eq!(d.len().unwrap(), 4008);
        let all = read_all(&d).unwrap();
        assert_eq!(&all[..16], &[7u8; 16]);
        assert_eq!(&all[4000..], &[9u8; 8]);
        // The gap is zero-filled.
        assert!(all[16..4000].iter().all(|&b| b == 0));
    }

    #[test]
    fn multiple_datasets_isolated() {
        let (f, _) = mem_file();
        let a = f.create_dataset("g/a", DType::U8, 8).unwrap();
        let b = f.create_dataset("g/b", DType::U8, 8).unwrap();
        a.write_at(0, &[1u8; 8]).unwrap();
        b.write_at(0, &[2u8; 8]).unwrap();
        assert_eq!(read_all(&a).unwrap(), vec![1u8; 8]);
        assert_eq!(read_all(&b).unwrap(), vec![2u8; 8]);
    }

    #[test]
    fn list_by_group() {
        let (f, _) = mem_file();
        f.create_dataset("g1/a", DType::U8, 1).unwrap();
        f.create_dataset("g1/b", DType::U8, 1).unwrap();
        f.create_dataset("g2/c", DType::U8, 1).unwrap();
        assert_eq!(f.list("g1"), vec!["g1/a", "g1/b"]);
        assert_eq!(f.list("").len(), 3);
    }

    #[test]
    fn duplicate_create_rejected() {
        let (f, _) = mem_file();
        f.create_dataset("d", DType::U8, 1).unwrap();
        assert!(f.create_dataset("d", DType::U8, 1).is_err());
    }

    #[test]
    fn missing_dataset_not_found() {
        let (f, _) = mem_file();
        assert!(f.dataset("nope").is_err());
        assert!(!f.has_dataset("nope"));
    }

    #[test]
    fn delete_then_flush_then_reopen() {
        let obj = MemObject::new();
        let f = H5File::create(Box::new(obj.clone())).unwrap();
        f.create_dataset("a", DType::U8, 4).unwrap();
        f.create_dataset("b", DType::U8, 4).unwrap();
        f.delete_dataset("a").unwrap();
        f.flush().unwrap();
        let f2 = H5File::open(Box::new(obj)).unwrap();
        assert!(!f2.has_dataset("a"));
        assert!(f2.has_dataset("b"));
    }

    #[test]
    fn open_rejects_garbage() {
        let obj = MemObject::from_vec(vec![0u8; 100]);
        assert!(H5File::open(Box::new(obj)).is_err());
    }

    #[test]
    fn open_or_create_is_idempotent() {
        let obj = MemObject::new();
        let f = H5File::open_or_create(Box::new(obj.clone())).unwrap();
        f.create_dataset("d", DType::I64, 2).unwrap();
        f.flush().unwrap();
        let f2 = H5File::open_or_create(Box::new(obj)).unwrap();
        assert!(f2.has_dataset("d"), "existing container must be opened, not clobbered");
    }

    #[test]
    fn set_len_zero_extends() {
        let (f, _) = mem_file();
        let d = f.create_dataset("z", DType::U8, 2).unwrap();
        d.write_at(0, &[5, 5]).unwrap();
        d.set_len(10).unwrap();
        let all = read_all(&d).unwrap();
        assert_eq!(all, vec![5, 5, 0, 0, 0, 0, 0, 0, 0, 0]);
        d.set_len(1).unwrap();
        assert_eq!(read_all(&d).unwrap(), vec![5]);
    }
}
