//! Vector-key URLs.
//!
//! Persistent MegaMmap vectors are named by a URL: *"the key of the vector
//! is structured as a URL (i.e., `protocol://URI:params`), where all
//! information needed to read and write the object ... [is] provided"*.
//! Examples from the paper:
//!
//! * `hdf5:///path/to/df.h5:mygroup` — an HDF5 group within a file;
//! * `file:///path/to/dataset.parquet*` — a glob over many files presented
//!   as one uniform vector.

use std::fmt;
use std::path::PathBuf;

/// Supported backend protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Plain binary file(s) on a POSIX filesystem (supports `*` globs).
    File,
    /// A dataset inside an [`h5lite`](crate::h5lite) container.
    Hdf5,
    /// A column-set inside a [`pqlite`](crate::pqlite) container.
    Parquet,
    /// An object in the S3-like [`objstore`](crate::objstore).
    Obj,
    /// A volatile in-memory object (temporary shared data).
    Mem,
}

impl Scheme {
    /// Parse a scheme string (accepting aliases like `h5`, `pq`, `s3`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "file" => Some(Scheme::File),
            "hdf5" | "h5" => Some(Scheme::Hdf5),
            "parquet" | "pq" => Some(Scheme::Parquet),
            "obj" | "s3" => Some(Scheme::Obj),
            "mem" => Some(Scheme::Mem),
            _ => None,
        }
    }

    /// Canonical scheme string.
    pub fn as_str(self) -> &'static str {
        match self {
            Scheme::File => "file",
            Scheme::Hdf5 => "hdf5",
            Scheme::Parquet => "parquet",
            Scheme::Obj => "obj",
            Scheme::Mem => "mem",
        }
    }
}

/// Error produced when a vector key is not a valid URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UrlError(pub String);

impl fmt::Display for UrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid data URL: {}", self.0)
    }
}

impl std::error::Error for UrlError {}

/// A parsed vector key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DataUrl {
    /// Backend protocol.
    pub scheme: Scheme,
    /// Path or object name (may contain `*` for `file://`).
    pub path: String,
    /// Optional `:params` suffix — e.g. the HDF5 group / parquet column set.
    pub params: Option<String>,
}

impl DataUrl {
    /// Parse `protocol://URI[:params]`.
    ///
    /// The `:params` separator is the **last** colon after the authority
    /// part, so Windows-style or nested paths keep working.
    pub fn parse(key: &str) -> Result<Self, UrlError> {
        let (scheme_str, rest) =
            key.split_once("://").ok_or_else(|| UrlError(format!("missing '://' in {key:?}")))?;
        let scheme = Scheme::parse(scheme_str)
            .ok_or_else(|| UrlError(format!("unknown scheme {scheme_str:?}")))?;
        if rest.is_empty() {
            return Err(UrlError(format!("empty path in {key:?}")));
        }
        // Split params on the last ':' that is not part of the path root.
        let (path, params) = match rest.rsplit_once(':') {
            Some((p, q)) if !p.is_empty() && !q.is_empty() && !q.contains('/') => {
                (p.to_string(), Some(q.to_string()))
            }
            _ => (rest.to_string(), None),
        };
        Ok(Self { scheme, path, params })
    }

    /// Build an in-memory volatile URL from a plain name.
    pub fn mem(name: &str) -> Self {
        Self { scheme: Scheme::Mem, path: name.to_string(), params: None }
    }

    /// Whether the path contains a `*` glob.
    pub fn is_glob(&self) -> bool {
        self.path.contains('*')
    }

    /// The path as a filesystem path.
    pub fn fs_path(&self) -> PathBuf {
        PathBuf::from(&self.path)
    }

    /// Canonical string form.
    pub fn to_string_key(&self) -> String {
        match &self.params {
            Some(p) => format!("{}://{}:{}", self.scheme.as_str(), self.path, p),
            None => format!("{}://{}", self.scheme.as_str(), self.path),
        }
    }
}

impl fmt::Display for DataUrl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_examples() {
        let u = DataUrl::parse("hdf5:///path/to/df.h5:mygroup").unwrap();
        assert_eq!(u.scheme, Scheme::Hdf5);
        assert_eq!(u.path, "/path/to/df.h5");
        assert_eq!(u.params.as_deref(), Some("mygroup"));

        let u = DataUrl::parse("file:///path/to/dataset.parquet*").unwrap();
        assert_eq!(u.scheme, Scheme::File);
        assert!(u.is_glob());
        assert_eq!(u.params, None);
    }

    #[test]
    fn scheme_aliases() {
        assert_eq!(DataUrl::parse("pq:///d.pq").unwrap().scheme, Scheme::Parquet);
        assert_eq!(DataUrl::parse("s3://bucket/key").unwrap().scheme, Scheme::Obj);
        assert_eq!(DataUrl::parse("h5:///a.h5").unwrap().scheme, Scheme::Hdf5);
    }

    #[test]
    fn rejects_bad_urls() {
        assert!(DataUrl::parse("no-scheme-here").is_err());
        assert!(DataUrl::parse("ftp:///nope").is_err());
        assert!(DataUrl::parse("file://").is_err());
    }

    #[test]
    fn params_split_ignores_path_colons() {
        // A colon followed by something containing '/' is part of the path.
        let u = DataUrl::parse("file:///a/b:c/d").unwrap();
        assert_eq!(u.path, "/a/b:c/d");
        assert_eq!(u.params, None);
    }

    #[test]
    fn round_trips_to_string() {
        for key in ["hdf5:///x.h5:grp", "file:///plain.bin", "mem://scratch"] {
            let u = DataUrl::parse(key).unwrap();
            assert_eq!(u.to_string_key(), key);
            assert_eq!(DataUrl::parse(&u.to_string_key()).unwrap(), u);
        }
    }

    #[test]
    fn mem_constructor() {
        let u = DataUrl::mem("scratch");
        assert_eq!(u.scheme, Scheme::Mem);
        assert_eq!(u.to_string_key(), "mem://scratch");
    }
}
