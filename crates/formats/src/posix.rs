//! Plain binary files on a POSIX filesystem (`file://`).

use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use crate::object::DataObject;

/// A [`DataObject`] backed by one file on disk.
#[derive(Debug)]
pub struct PosixObject {
    path: PathBuf,
    file: Mutex<File>,
}

impl PosixObject {
    /// Open or create the file at `path` for ranged read/write.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        Ok(Self { path, file: Mutex::new(file) })
    }

    /// Open an existing file read/write; errors if it does not exist.
    pub fn open_existing(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        Ok(Self { path, file: Mutex::new(file) })
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl DataObject for PosixObject {
    fn len(&self) -> io::Result<u64> {
        Ok(self.file.lock().metadata()?.len())
    }

    fn read_at(&self, off: u64, buf: &mut [u8]) -> io::Result<usize> {
        let file = self.file.lock();
        let len = file.metadata()?.len();
        if off >= len {
            return Ok(0);
        }
        let want = buf.len().min((len - off) as usize);
        let mut done = 0;
        while done < want {
            let n = file.read_at(&mut buf[done..want], off + done as u64)?;
            if n == 0 {
                break;
            }
            done += n;
        }
        Ok(done)
    }

    fn write_at(&self, off: u64, data: &[u8]) -> io::Result<()> {
        let file = self.file.lock();
        file.write_all_at(data, off)
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.file.lock().set_len(len)
    }

    fn flush(&self) -> io::Result<()> {
        self.file.lock().sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::read_all;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("megammap-formats-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn ranged_io_round_trip() {
        let p = tmp("posix-roundtrip");
        let o = PosixObject::open(&p).unwrap();
        o.set_len(0).unwrap();
        o.write_at(10, b"hello").unwrap();
        assert_eq!(o.len().unwrap(), 15);
        let mut buf = [0u8; 5];
        assert_eq!(o.read_at(10, &mut buf).unwrap(), 5);
        assert_eq!(&buf, b"hello");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn persists_across_reopen() {
        let p = tmp("posix-reopen");
        {
            let o = PosixObject::open(&p).unwrap();
            o.set_len(0).unwrap();
            o.write_at(0, b"persist me").unwrap();
            o.flush().unwrap();
        }
        let o = PosixObject::open_existing(&p).unwrap();
        assert_eq!(read_all(&o).unwrap(), b"persist me");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn open_existing_fails_on_missing() {
        assert!(PosixObject::open_existing("/definitely/not/here.bin").is_err());
    }

    #[test]
    fn creates_parent_dirs() {
        let p = tmp("nested").join("a/b/c.bin");
        let o = PosixObject::open(&p).unwrap();
        o.write_at(0, b"x").unwrap();
        assert!(p.exists());
        std::fs::remove_dir_all(tmp("nested")).ok();
    }
}
