//! `pqlite` — a columnar container format standing in for Apache Parquet.
//!
//! A container stores a schema (named, typed columns) and a sequence of
//! **row groups**; within a row group each column's values are contiguous
//! (column chunks). The layout is real and self-describing:
//!
//! ```text
//! [8 B magic "PQLITE\x00\x01"]
//! [row group 0: col0 chunk | col1 chunk | ...]
//! [row group 1: ...]
//! [footer: schema + row-group index][footer_len u64][8 B magic]
//! ```
//!
//! [`PqRecords`] additionally exposes the container as a flat, row-major
//! record space implementing [`DataObject`] — the adapter that lets a
//! MegaMmap vector of fixed-size records be backed by a columnar file, with
//! gather/scatter between record space and column chunks happening on
//! stage-in/stage-out.

use std::io;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::dtype::DType;
use crate::object::DataObject;

const MAGIC: &[u8; 8] = b"PQLITE\x00\x01";
const HEADER_LEN: u64 = 8;
const FOOTER_TAIL: u64 = 8 + 8; // footer_len + magic

fn err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// One column declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Element type.
    pub dtype: DType,
}

impl Column {
    /// Shorthand constructor.
    pub fn new(name: &str, dtype: DType) -> Self {
        Self { name: name.to_string(), dtype }
    }
}

/// An ordered set of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    /// The columns, in record order.
    pub columns: Vec<Column>,
}

impl Schema {
    /// Build a schema from columns.
    pub fn new(columns: Vec<Column>) -> Self {
        Self { columns }
    }

    /// Bytes of one row-major record.
    pub fn record_size(&self) -> usize {
        self.columns.iter().map(|c| c.dtype.size()).sum()
    }

    /// Byte offset of column `i` within a record.
    pub fn col_offset(&self, i: usize) -> usize {
        self.columns[..i].iter().map(|c| c.dtype.size()).sum()
    }

    /// Index of the column with `name`.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }
}

#[derive(Debug, Clone)]
struct RowGroup {
    /// Row count in this group.
    rows: u64,
    /// File offset where the group's first column chunk starts.
    off: u64,
}

struct Inner {
    obj: Box<dyn DataObject>,
    schema: Schema,
    state: RwLock<State>,
}

struct State {
    groups: Vec<RowGroup>,
    data_end: u64,
}

/// An open `pqlite` container.
#[derive(Clone)]
pub struct PqFile {
    inner: Arc<Inner>,
}

impl PqFile {
    /// Create a fresh container with `schema` (truncates existing content).
    pub fn create(obj: Box<dyn DataObject>, schema: Schema) -> io::Result<Self> {
        if schema.columns.is_empty() {
            return Err(err("pqlite: empty schema"));
        }
        obj.set_len(0)?;
        obj.write_at(0, MAGIC)?;
        let f = Self {
            inner: Arc::new(Inner {
                obj,
                schema,
                state: RwLock::new(State { groups: Vec::new(), data_end: HEADER_LEN }),
            }),
        };
        f.flush()?;
        Ok(f)
    }

    /// Open an existing container.
    pub fn open(obj: Box<dyn DataObject>) -> io::Result<Self> {
        let len = obj.len()?;
        if len < HEADER_LEN + FOOTER_TAIL {
            return Err(err("pqlite: file too small"));
        }
        let mut head = [0u8; 8];
        obj.read_at(0, &mut head)?;
        if &head != MAGIC {
            return Err(err("pqlite: bad header magic"));
        }
        let mut tail = [0u8; FOOTER_TAIL as usize];
        obj.read_at(len - FOOTER_TAIL, &mut tail)?;
        if &tail[8..16] != MAGIC {
            return Err(err("pqlite: bad footer magic"));
        }
        let flen = u64::from_le_bytes(tail[0..8].try_into().unwrap());
        let foff = len - FOOTER_TAIL - flen;
        let mut fbytes = vec![0u8; flen as usize];
        obj.read_at(foff, &mut fbytes)?;
        let (schema, groups) = decode_footer(&fbytes)?;
        Ok(Self {
            inner: Arc::new(Inner {
                obj,
                schema,
                state: RwLock::new(State { groups, data_end: foff }),
            }),
        })
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.inner.schema
    }

    /// Number of row groups.
    pub fn num_row_groups(&self) -> usize {
        self.inner.state.read().groups.len()
    }

    /// Total rows across all groups.
    pub fn num_rows(&self) -> u64 {
        self.inner.state.read().groups.iter().map(|g| g.rows).sum()
    }

    /// Rows in group `rg`.
    pub fn rows_in(&self, rg: usize) -> io::Result<u64> {
        self.inner
            .state
            .read()
            .groups
            .get(rg)
            .map(|g| g.rows)
            .ok_or_else(|| err(format!("pqlite: no row group {rg}")))
    }

    /// Append a row group. `cols[i]` holds the little-endian values of
    /// column `i`; all columns must describe the same row count.
    pub fn append_row_group(&self, cols: &[Vec<u8>]) -> io::Result<()> {
        let schema = &self.inner.schema;
        if cols.len() != schema.columns.len() {
            return Err(err("pqlite: column count mismatch"));
        }
        let rows = cols[0].len() as u64 / schema.columns[0].dtype.size() as u64;
        for (c, col) in cols.iter().zip(&schema.columns) {
            if c.len() as u64 != rows * col.dtype.size() as u64 {
                return Err(err(format!("pqlite: column {:?} length mismatch", col.name)));
            }
        }
        let mut st = self.inner.state.write();
        let off = st.data_end;
        let mut pos = off;
        for c in cols {
            self.inner.obj.write_at(pos, c)?;
            pos += c.len() as u64;
        }
        st.data_end = pos;
        st.groups.push(RowGroup { rows, off });
        Ok(())
    }

    fn chunk_loc(&self, rg: usize, col: usize) -> io::Result<(u64, u64)> {
        let st = self.inner.state.read();
        let g = st.groups.get(rg).ok_or_else(|| err("pqlite: bad row group"))?;
        let schema = &self.inner.schema;
        if col >= schema.columns.len() {
            return Err(err("pqlite: bad column"));
        }
        let mut off = g.off;
        for c in &schema.columns[..col] {
            off += g.rows * c.dtype.size() as u64;
        }
        Ok((off, g.rows * schema.columns[col].dtype.size() as u64))
    }

    /// Read one column chunk.
    pub fn read_column(&self, rg: usize, col: usize) -> io::Result<Vec<u8>> {
        let (off, len) = self.chunk_loc(rg, col)?;
        let mut buf = vec![0u8; len as usize];
        self.inner.obj.read_at(off, &mut buf)?;
        Ok(buf)
    }

    /// Overwrite one column chunk in place (length must match).
    pub fn write_column(&self, rg: usize, col: usize, data: &[u8]) -> io::Result<()> {
        let (off, len) = self.chunk_loc(rg, col)?;
        if data.len() as u64 != len {
            return Err(err("pqlite: chunk length mismatch"));
        }
        self.inner.obj.write_at(off, data)
    }

    /// Persist the footer; the container becomes reopenable.
    pub fn flush(&self) -> io::Result<()> {
        let st = self.inner.state.read();
        let fbytes = encode_footer(&self.inner.schema, &st.groups);
        let foff = st.data_end;
        self.inner.obj.write_at(foff, &fbytes)?;
        let mut tail = Vec::with_capacity(FOOTER_TAIL as usize);
        tail.extend_from_slice(&(fbytes.len() as u64).to_le_bytes());
        tail.extend_from_slice(MAGIC);
        self.inner.obj.write_at(foff + fbytes.len() as u64, &tail)?;
        self.inner.obj.set_len(foff + fbytes.len() as u64 + FOOTER_TAIL)?;
        self.inner.obj.flush()
    }
}

fn encode_footer(schema: &Schema, groups: &[RowGroup]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(schema.columns.len() as u32).to_le_bytes());
    for c in &schema.columns {
        out.extend_from_slice(&(c.name.len() as u16).to_le_bytes());
        out.extend_from_slice(c.name.as_bytes());
        out.push(c.dtype.tag());
    }
    out.extend_from_slice(&(groups.len() as u32).to_le_bytes());
    for g in groups {
        out.extend_from_slice(&g.rows.to_le_bytes());
        out.extend_from_slice(&g.off.to_le_bytes());
    }
    out
}

fn decode_footer(bytes: &[u8]) -> io::Result<(Schema, Vec<RowGroup>)> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> io::Result<&[u8]> {
        if *pos + n > bytes.len() {
            return Err(err("pqlite: truncated footer"));
        }
        let s = &bytes[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };
    let ncols = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
    let mut columns = Vec::with_capacity(ncols as usize);
    for _ in 0..ncols {
        let nlen = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
        let name = String::from_utf8(take(&mut pos, nlen)?.to_vec())
            .map_err(|_| err("pqlite: bad column name"))?;
        let dtype = DType::from_tag(take(&mut pos, 1)?[0]).ok_or_else(|| err("bad dtype"))?;
        columns.push(Column { name, dtype });
    }
    let ngroups = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
    let mut groups = Vec::with_capacity(ngroups as usize);
    for _ in 0..ngroups {
        let rows = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let off = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        groups.push(RowGroup { rows, off });
    }
    Ok((Schema { columns }, groups))
}

/// Row-major record view over a [`PqFile`], implementing [`DataObject`].
///
/// Byte offset `i * record_size + col_offset(c)` in the view corresponds to
/// row `i`, column `c`. Reads gather from column chunks; writes scatter back.
/// Writes must stay within the existing rows (appends go through
/// [`PqFile::append_row_group`]).
#[derive(Clone)]
pub struct PqRecords {
    file: PqFile,
}

impl PqRecords {
    /// Wrap an open container.
    pub fn new(file: PqFile) -> Self {
        Self { file }
    }

    /// The underlying container.
    pub fn file(&self) -> &PqFile {
        &self.file
    }

    fn record_size(&self) -> u64 {
        self.file.schema().record_size() as u64
    }

    /// Translate `(row range)` to per-group work and invoke `f(rg, first
    /// row in rg, rows, global first row)`.
    fn for_groups(
        &self,
        row0: u64,
        rows: u64,
        mut f: impl FnMut(usize, u64, u64, u64) -> io::Result<()>,
    ) -> io::Result<()> {
        let mut base = 0u64;
        let ngroups = self.file.num_row_groups();
        let mut remaining_start = row0;
        let mut remaining = rows;
        for rg in 0..ngroups {
            let g_rows = self.file.rows_in(rg)?;
            let g_end = base + g_rows;
            if remaining > 0 && remaining_start < g_end {
                let local = remaining_start - base;
                let take = remaining.min(g_rows - local);
                f(rg, local, take, remaining_start)?;
                remaining_start += take;
                remaining -= take;
            }
            base = g_end;
            if remaining == 0 {
                break;
            }
        }
        Ok(())
    }
}

impl DataObject for PqRecords {
    fn len(&self) -> io::Result<u64> {
        Ok(self.file.num_rows() * self.record_size())
    }

    fn read_at(&self, off: u64, buf: &mut [u8]) -> io::Result<usize> {
        let rsz = self.record_size();
        let total = self.len()?;
        if off >= total {
            return Ok(0);
        }
        let want = (buf.len() as u64).min(total - off);
        // Work over whole records covering [off, off+want), then copy the
        // requested byte window out.
        let row0 = off / rsz;
        let row_end = (off + want).div_ceil(rsz);
        let mut records = vec![0u8; ((row_end - row0) * rsz) as usize];
        let schema = self.file.schema().clone();
        self.for_groups(row0, row_end - row0, |rg, local, take, global0| {
            for (ci, col) in schema.columns.iter().enumerate() {
                let chunk = self.file.read_column(rg, ci)?;
                let esz = col.dtype.size() as u64;
                let coff = schema.col_offset(ci) as u64;
                for r in 0..take {
                    let src = ((local + r) * esz) as usize;
                    let dst = (((global0 + r) - row0) * rsz + coff) as usize;
                    records[dst..dst + esz as usize]
                        .copy_from_slice(&chunk[src..src + esz as usize]);
                }
            }
            Ok(())
        })?;
        let skip = (off - row0 * rsz) as usize;
        buf[..want as usize].copy_from_slice(&records[skip..skip + want as usize]);
        Ok(want as usize)
    }

    fn write_at(&self, off: u64, data: &[u8]) -> io::Result<()> {
        let rsz = self.record_size();
        let total = self.len()?;
        if off + data.len() as u64 > total {
            return Err(err("pqlite: record write past end (append via row groups)"));
        }
        let row0 = off / rsz;
        let row_end = (off + data.len() as u64).div_ceil(rsz);
        // Read-modify-write whole covering records.
        let mut records = vec![0u8; ((row_end - row0) * rsz) as usize];
        self.read_at(row0 * rsz, &mut records)?;
        let skip = (off - row0 * rsz) as usize;
        records[skip..skip + data.len()].copy_from_slice(data);
        let schema = self.file.schema().clone();
        self.for_groups(row0, row_end - row0, |rg, local, take, global0| {
            for (ci, col) in schema.columns.iter().enumerate() {
                let mut chunk = self.file.read_column(rg, ci)?;
                let esz = col.dtype.size() as u64;
                let coff = schema.col_offset(ci) as u64;
                for r in 0..take {
                    let dst = ((local + r) * esz) as usize;
                    let src = (((global0 + r) - row0) * rsz + coff) as usize;
                    chunk[dst..dst + esz as usize]
                        .copy_from_slice(&records[src..src + esz as usize]);
                }
                self.file.write_column(rg, ci, &chunk)?;
            }
            Ok(())
        })
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        if len == self.len()? {
            Ok(())
        } else {
            Err(err("pqlite: record view cannot resize; append row groups"))
        }
    }

    fn flush(&self) -> io::Result<()> {
        self.file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::MemObject;

    fn xyz_schema() -> Schema {
        Schema::new(vec![
            Column::new("x", DType::F32),
            Column::new("y", DType::F32),
            Column::new("z", DType::F32),
        ])
    }

    fn col_f32(vals: &[f32]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn write_and_read_columns() {
        let f = PqFile::create(Box::new(MemObject::new()), xyz_schema()).unwrap();
        f.append_row_group(&[col_f32(&[1.0, 2.0]), col_f32(&[3.0, 4.0]), col_f32(&[5.0, 6.0])])
            .unwrap();
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.read_column(0, 1).unwrap(), col_f32(&[3.0, 4.0]));
    }

    #[test]
    fn reopen_round_trip() {
        let obj = MemObject::new();
        {
            let f = PqFile::create(Box::new(obj.clone()), xyz_schema()).unwrap();
            f.append_row_group(&[col_f32(&[1.0]), col_f32(&[2.0]), col_f32(&[3.0])]).unwrap();
            f.append_row_group(&[col_f32(&[4.0]), col_f32(&[5.0]), col_f32(&[6.0])]).unwrap();
            f.flush().unwrap();
        }
        let f = PqFile::open(Box::new(obj)).unwrap();
        assert_eq!(f.schema(), &xyz_schema());
        assert_eq!(f.num_row_groups(), 2);
        assert_eq!(f.read_column(1, 2).unwrap(), col_f32(&[6.0]));
    }

    #[test]
    fn mismatched_columns_rejected() {
        let f = PqFile::create(Box::new(MemObject::new()), xyz_schema()).unwrap();
        assert!(f.append_row_group(&[col_f32(&[1.0])]).is_err(), "wrong column count");
        assert!(
            f.append_row_group(&[col_f32(&[1.0]), col_f32(&[2.0, 9.0]), col_f32(&[3.0])]).is_err(),
            "ragged rows"
        );
    }

    #[test]
    fn record_view_gathers_row_major() {
        let f = PqFile::create(Box::new(MemObject::new()), xyz_schema()).unwrap();
        f.append_row_group(&[col_f32(&[1.0, 4.0]), col_f32(&[2.0, 5.0]), col_f32(&[3.0, 6.0])])
            .unwrap();
        let rec = PqRecords::new(f);
        assert_eq!(rec.len().unwrap(), 2 * 12);
        let mut buf = [0u8; 24];
        rec.read_at(0, &mut buf).unwrap();
        let vals: Vec<f32> =
            buf.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
        assert_eq!(vals, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn record_view_scatters_writes() {
        let f = PqFile::create(Box::new(MemObject::new()), xyz_schema()).unwrap();
        f.append_row_group(&[col_f32(&[0.0; 3]), col_f32(&[0.0; 3]), col_f32(&[0.0; 3])]).unwrap();
        let rec = PqRecords::new(f.clone());
        // Write record 1 = (7, 8, 9).
        let bytes = col_f32(&[7.0, 8.0, 9.0]);
        rec.write_at(12, &bytes).unwrap();
        assert_eq!(f.read_column(0, 0).unwrap(), col_f32(&[0.0, 7.0, 0.0]));
        assert_eq!(f.read_column(0, 2).unwrap(), col_f32(&[0.0, 9.0, 0.0]));
    }

    #[test]
    fn record_view_spans_row_groups() {
        let f = PqFile::create(Box::new(MemObject::new()), xyz_schema()).unwrap();
        f.append_row_group(&[col_f32(&[1.0]), col_f32(&[2.0]), col_f32(&[3.0])]).unwrap();
        f.append_row_group(&[col_f32(&[4.0]), col_f32(&[5.0]), col_f32(&[6.0])]).unwrap();
        let rec = PqRecords::new(f);
        // Read a window crossing the group boundary: bytes 8..20 = z of row
        // 0 and x,y of row 1.
        let mut buf = [0u8; 12];
        rec.read_at(8, &mut buf).unwrap();
        let vals: Vec<f32> =
            buf.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
        assert_eq!(vals, vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn unaligned_partial_record_write() {
        let f = PqFile::create(Box::new(MemObject::new()), xyz_schema()).unwrap();
        f.append_row_group(&[col_f32(&[1.0, 2.0]), col_f32(&[3.0, 4.0]), col_f32(&[5.0, 6.0])])
            .unwrap();
        let rec = PqRecords::new(f.clone());
        // Overwrite just y of row 0 (bytes 4..8).
        rec.write_at(4, &42f32.to_le_bytes()).unwrap();
        assert_eq!(f.read_column(0, 1).unwrap(), col_f32(&[42.0, 4.0]));
        assert_eq!(f.read_column(0, 0).unwrap(), col_f32(&[1.0, 2.0]), "x untouched");
    }

    #[test]
    fn record_write_past_end_rejected() {
        let f = PqFile::create(Box::new(MemObject::new()), xyz_schema()).unwrap();
        f.append_row_group(&[col_f32(&[1.0]), col_f32(&[2.0]), col_f32(&[3.0])]).unwrap();
        let rec = PqRecords::new(f);
        assert!(rec.write_at(12, &[0u8; 4]).is_err());
    }

    #[test]
    fn empty_schema_rejected() {
        assert!(PqFile::create(Box::new(MemObject::new()), Schema::default()).is_err());
    }
}
