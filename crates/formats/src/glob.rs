//! Filesystem glob expansion for multi-file datasets.
//!
//! The paper: "multiple data objects, such as files produced in a
//! file-per-process HPC simulation, can be mapped as a single uniform
//! vector via a regex query such as `file:///path/to/dataset.parquet*`".
//! Only the `*` wildcard is supported (match any run of characters within a
//! file name); matches are returned sorted so the concatenation order is
//! deterministic.

use std::io;
use std::path::{Path, PathBuf};

/// Whether `name` matches `pattern` where `*` matches any (possibly empty)
/// run of characters.
pub fn wildcard_match(pattern: &str, name: &str) -> bool {
    // Classic two-pointer wildcard match, O(n*m) worst case but patterns
    // here are file names.
    let p: Vec<char> = pattern.chars().collect();
    let n: Vec<char> = name.chars().collect();
    let (mut pi, mut ni) = (0usize, 0usize);
    let (mut star, mut mark) = (None::<usize>, 0usize);
    while ni < n.len() {
        if pi < p.len() && (p[pi] == n[ni]) {
            pi += 1;
            ni += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some(pi);
            mark = ni;
            pi += 1;
        } else if let Some(s) = star {
            pi = s + 1;
            mark += 1;
            ni = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

/// Expand a path that may contain `*` in its final component into the
/// sorted list of matching files. A literal path returns itself (if it
/// exists) without touching the directory.
pub fn expand(path: &str) -> io::Result<Vec<PathBuf>> {
    if !path.contains('*') {
        let p = PathBuf::from(path);
        return if p.exists() {
            Ok(vec![p])
        } else {
            Err(io::Error::new(io::ErrorKind::NotFound, path.to_string()))
        };
    }
    let p = Path::new(path);
    let dir = p.parent().unwrap_or_else(|| Path::new("."));
    let pattern = p
        .file_name()
        .and_then(|f| f.to_str())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "bad glob"))?;
    if dir.to_string_lossy().contains('*') {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "globs are only supported in the final path component",
        ));
    }
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if wildcard_match(pattern, name) {
                out.push(entry.path());
            }
        }
    }
    out.sort();
    if out.is_empty() {
        return Err(io::Error::new(io::ErrorKind::NotFound, format!("no match for {path}")));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildcard_semantics() {
        assert!(wildcard_match("*", "anything"));
        assert!(wildcard_match("data.*.pq", "data.0001.pq"));
        assert!(wildcard_match("data*", "data"));
        assert!(!wildcard_match("data.*.pq", "data.pq"));
        assert!(!wildcard_match("a*b", "acbx"));
        assert!(wildcard_match("a*b*c", "a--b--c"));
        assert!(!wildcard_match("abc", "abd"));
    }

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mm-glob-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn expand_matches_sorted() {
        let d = tmpdir("sorted");
        for n in ["out.2.bin", "out.0.bin", "out.1.bin", "other.txt"] {
            std::fs::write(d.join(n), b"x").unwrap();
        }
        let pat = d.join("out.*.bin");
        let got = expand(pat.to_str().unwrap()).unwrap();
        let names: Vec<_> =
            got.iter().map(|p| p.file_name().unwrap().to_string_lossy().to_string()).collect();
        assert_eq!(names, vec!["out.0.bin", "out.1.bin", "out.2.bin"]);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn literal_path_passthrough() {
        let d = tmpdir("literal");
        let f = d.join("one.bin");
        std::fs::write(&f, b"x").unwrap();
        assert_eq!(expand(f.to_str().unwrap()).unwrap(), vec![f.clone()]);
        assert!(expand(d.join("missing.bin").to_str().unwrap()).is_err());
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn no_match_is_error() {
        let d = tmpdir("nomatch");
        assert!(expand(d.join("zzz*").to_str().unwrap()).is_err());
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn glob_in_directory_rejected() {
        assert!(expand("/tmp/*/file.bin").is_err());
    }
}
