//! An S3-like in-memory object store.
//!
//! The paper's stager supports "storage services (e.g., PFS, Amazon S3)".
//! [`ObjStore`] is the Amazon-S3 stand-in: buckets of named immutable-size
//! semantics are relaxed to growable objects so the stager can write pages
//! incrementally.

use std::collections::BTreeMap;
use std::io;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::object::{DataObject, MemObject};

/// An in-memory bucket/key object service.
#[derive(Debug, Default, Clone)]
pub struct ObjStore {
    buckets: Arc<RwLock<BTreeMap<String, BTreeMap<String, MemObject>>>>,
}

impl ObjStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open (creating if absent) the object at `bucket/key`.
    pub fn open(&self, bucket: &str, key: &str) -> MemObject {
        let mut buckets = self.buckets.write();
        buckets.entry(bucket.to_string()).or_default().entry(key.to_string()).or_default().clone()
    }

    /// Get the object if it exists.
    pub fn get(&self, bucket: &str, key: &str) -> Option<MemObject> {
        self.buckets.read().get(bucket)?.get(key).cloned()
    }

    /// Put full object contents.
    pub fn put(&self, bucket: &str, key: &str, data: Vec<u8>) -> io::Result<()> {
        let obj = self.open(bucket, key);
        obj.set_len(0)?;
        obj.write_at(0, &data)
    }

    /// Delete an object; `true` if it existed.
    pub fn delete(&self, bucket: &str, key: &str) -> bool {
        self.buckets.write().get_mut(bucket).map(|b| b.remove(key).is_some()).unwrap_or(false)
    }

    /// List keys in a bucket with the given prefix.
    pub fn list(&self, bucket: &str, prefix: &str) -> Vec<String> {
        self.buckets
            .read()
            .get(bucket)
            .map(|b| b.keys().filter(|k| k.starts_with(prefix)).cloned().collect())
            .unwrap_or_default()
    }

    /// Total bytes stored (diagnostics).
    pub fn total_bytes(&self) -> u64 {
        self.buckets.read().values().flat_map(|b| b.values()).map(|o| o.len().unwrap_or(0)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::read_all;

    #[test]
    fn put_get_round_trip() {
        let s = ObjStore::new();
        s.put("bkt", "a/b.bin", vec![1, 2, 3]).unwrap();
        let o = s.get("bkt", "a/b.bin").unwrap();
        assert_eq!(read_all(&o).unwrap(), vec![1, 2, 3]);
        assert!(s.get("bkt", "missing").is_none());
        assert!(s.get("nobucket", "a/b.bin").is_none());
    }

    #[test]
    fn open_creates_and_shares() {
        let s = ObjStore::new();
        let a = s.open("b", "k");
        a.write_at(0, b"hi").unwrap();
        let b = s.open("b", "k");
        assert_eq!(read_all(&b).unwrap(), b"hi");
    }

    #[test]
    fn list_with_prefix() {
        let s = ObjStore::new();
        s.put("b", "x/1", vec![]).unwrap();
        s.put("b", "x/2", vec![]).unwrap();
        s.put("b", "y/3", vec![]).unwrap();
        assert_eq!(s.list("b", "x/"), vec!["x/1", "x/2"]);
        assert_eq!(s.list("b", "").len(), 3);
        assert!(s.list("nope", "").is_empty());
    }

    #[test]
    fn delete_and_totals() {
        let s = ObjStore::new();
        s.put("b", "k", vec![0u8; 100]).unwrap();
        assert_eq!(s.total_bytes(), 100);
        assert!(s.delete("b", "k"));
        assert!(!s.delete("b", "k"));
        assert_eq!(s.total_bytes(), 0);
    }
}
