//! # megammap-formats — storage backends and file formats for the stager
//!
//! MegaMmap's Data Stager "contain[s] integrations with widely-used file
//! formats (e.g., HDF5, Adios2, parquet) and storage services (e.g., PFS,
//! Amazon S3)". This crate provides from-scratch equivalents:
//!
//! * [`url`] — the `protocol://URI:params` vector-key format, including the
//!   `file:///path/to/dataset.parquet*` glob form that maps many files into
//!   one uniform vector.
//! * [`object`] — the [`DataObject`] trait every backend implements:
//!   byte-addressable ranged reads/writes over one named persistent object.
//! * [`posix`] — plain binary files on a filesystem.
//! * [`h5lite`] — a real hierarchical container format (groups → typed
//!   datasets, footer TOC, relocation on growth) standing in for HDF5 1.14.
//! * [`pqlite`] — a real columnar container (schema, row groups, per-column
//!   chunks, footer) standing in for Apache Parquet.
//! * [`objstore`] — an S3-like in-memory object service.
//! * [`multi`] — concatenation of several objects into one logical object
//!   (the "file-per-process simulation output mapped as a single vector"
//!   use case).
//! * [`factory`] — resolves a [`DataUrl`] to an opened [`DataObject`].
//!
//! The exact on-disk byte layout of HDF5/Parquet is irrelevant to the
//! paper's experiments; what matters — and what these implementations
//! provide — is *real* (de)serialization with partial-range access, so the
//! stager's costs and correctness are genuine.

pub mod dtype;
pub mod factory;
pub mod glob;
pub mod h5lite;
pub mod multi;
pub mod object;
pub mod objstore;
pub mod posix;
pub mod pqlite;
pub mod url;

pub use dtype::DType;
pub use factory::Backends;
pub use object::{DataObject, MemObject};
pub use url::{DataUrl, Scheme};
