//! Property tests: every `DataObject` implementation must behave like a
//! plain growable byte vector under arbitrary interleavings of ranged
//! reads, writes and truncations.

use megammap_formats::h5lite::H5File;
use megammap_formats::object::{DataObject, MemObject};
use megammap_formats::DType;
use proptest::prelude::*;

/// The operations the model exercises.
#[derive(Debug, Clone)]
enum Op {
    Write { off: u64, data: Vec<u8> },
    Read { off: u64, len: usize },
    SetLen { len: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..2000, proptest::collection::vec(any::<u8>(), 1..200))
            .prop_map(|(off, data)| Op::Write { off, data }),
        (0u64..2500, 0usize..300).prop_map(|(off, len)| Op::Read { off, len }),
        (0u64..2500).prop_map(|len| Op::SetLen { len }),
    ]
}

/// Drive an object and a `Vec<u8>` model through the same ops; all reads
/// and the final contents must agree.
fn check_object(obj: &dyn DataObject, ops: &[Op]) {
    let mut model: Vec<u8> = Vec::new();
    for op in ops {
        match op {
            Op::Write { off, data } => {
                obj.write_at(*off, data).unwrap();
                let end = *off as usize + data.len();
                if end > model.len() {
                    model.resize(end, 0);
                }
                model[*off as usize..end].copy_from_slice(data);
            }
            Op::Read { off, len } => {
                let mut buf = vec![0u8; *len];
                let n = obj.read_at(*off, &mut buf).unwrap();
                let expect: &[u8] = if (*off as usize) < model.len() {
                    &model[*off as usize..model.len().min(*off as usize + len)]
                } else {
                    &[]
                };
                assert_eq!(n, expect.len(), "read length at {off}+{len}");
                assert_eq!(&buf[..n], expect, "read contents at {off}");
            }
            Op::SetLen { len } => {
                obj.set_len(*len).unwrap();
                model.resize(*len as usize, 0);
            }
        }
        assert_eq!(obj.len().unwrap(), model.len() as u64, "length agreement");
    }
    let mut all = vec![0u8; model.len()];
    let n = obj.read_at(0, &mut all).unwrap();
    assert_eq!(n, model.len());
    assert_eq!(all, model, "final contents");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mem_object_is_a_byte_vector(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        check_object(&MemObject::new(), &ops);
    }

    #[test]
    fn h5lite_dataset_is_a_byte_vector(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let file = H5File::create(Box::new(MemObject::new())).unwrap();
        let dset = file.create_dataset("prop/data", DType::U8, 0).unwrap();
        check_object(&dset, &ops);
    }

    #[test]
    fn h5lite_survives_flush_reopen(ops in proptest::collection::vec(op_strategy(), 1..20)) {
        let backing = MemObject::new();
        let mut model: Vec<u8> = Vec::new();
        {
            let file = H5File::create(Box::new(backing.clone())).unwrap();
            let dset = file.create_dataset("d", DType::U8, 0).unwrap();
            for op in &ops {
                if let Op::Write { off, data } = op {
                    dset.write_at(*off, data).unwrap();
                    let end = *off as usize + data.len();
                    if end > model.len() {
                        model.resize(end, 0);
                    }
                    model[*off as usize..end].copy_from_slice(data);
                }
            }
            file.flush().unwrap();
        }
        let file = H5File::open(Box::new(backing)).unwrap();
        let dset = file.dataset("d").unwrap();
        let mut all = vec![0u8; model.len()];
        dset.read_at(0, &mut all).unwrap();
        prop_assert_eq!(all, model);
    }
}

#[test]
fn multi_object_is_a_byte_vector_for_writes_in_range() {
    // MultiObject can't grow members in the middle, so exercise it with
    // in-range traffic deterministically.
    use megammap_formats::multi::MultiObject;
    let members: Vec<Box<dyn DataObject>> = (0..3)
        .map(|_| Box::new(MemObject::from_vec(vec![0u8; 100])) as Box<dyn DataObject>)
        .collect();
    let multi = MultiObject::new(members).unwrap();
    let mut model = vec![0u8; 300];
    let mut seed = 12345u64;
    for _ in 0..200 {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let off = (seed >> 8) % 280;
        let len = 1 + ((seed >> 40) % 20) as usize;
        let byte = (seed >> 16) as u8;
        let data = vec![byte; len.min(300 - off as usize)];
        multi.write_at(off, &data).unwrap();
        model[off as usize..off as usize + data.len()].copy_from_slice(&data);
    }
    let mut all = vec![0u8; 300];
    multi.read_at(0, &mut all).unwrap();
    assert_eq!(all, model);
}
