#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the full test suite.
#
# Usage: ./ci.sh [--release]
#
# The workspace flag matters: the repo root is both the `mega-mmap`
# meta-crate and the workspace root, so a bare `cargo test` would only
# run the root package's suites.
set -euo pipefail
cd "$(dirname "$0")"

PROFILE=()
if [[ "${1:-}" == "--release" ]]; then
    PROFILE=(--release)
elif [[ $# -gt 0 ]]; then
    echo "usage: $0 [--release]" >&2
    exit 2
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets "${PROFILE[@]}" -- -D warnings

echo "==> mm-lint (workspace invariants, deny-by-default)"
cargo run -q -p mm-lint "${PROFILE[@]}" -- --root .

echo "==> mm-lint deny (licenses + duplicate versions)"
cargo run -q -p mm-lint "${PROFILE[@]}" -- --root . deny

echo "==> mm-lint --check-allow (no stale allowlist entries)"
cargo run -q -p mm-lint "${PROFILE[@]}" -- --root . --check-allow

echo "==> mm-lint graph (lock graph clean + committed artifact up to date)"
# Regenerates results/lock_graph.{json,dot} and fails on any non-allowlisted
# lock-order violation, rank cycle, or hold-across-I/O finding. The second
# run plus git-diff pins both determinism and artifact freshness: a PR that
# changes the lock structure must commit the regenerated graph.
cargo run -q -p mm-lint "${PROFILE[@]}" -- --root . graph
cp results/lock_graph.json /tmp/lock_graph.ci.a.json
cargo run -q -p mm-lint "${PROFILE[@]}" -- --root . graph
diff -q /tmp/lock_graph.ci.a.json results/lock_graph.json
git diff --exit-code -- results/lock_graph.json results/lock_graph.dot \
    || { echo "results/lock_graph.{json,dot} out of date; commit the regenerated graph" >&2; exit 1; }

echo "==> cargo test"
cargo test -q --workspace "${PROFILE[@]}"

echo "==> loom model checks (resource / dlock / page merge)"
cargo test -q -p megammap-sim --features loom-model "${PROFILE[@]}" --test loom_resource
cargo test -q -p megammap-cluster --features loom-model "${PROFILE[@]}" --test loom_dlock
cargo test -q -p megammap-tiered --features loom-model "${PROFILE[@]}" --test loom_page

echo "==> loom model checks (commit-vs-writeback / drain / ownership races)"
cargo test -q -p megammap --features loom-model "${PROFILE[@]}" --lib loom_

if rustup component list 2>/dev/null | grep -q "^miri.*(installed)"; then
    echo "==> miri (pagebuf + rangeset unit tests)"
    cargo miri test -p megammap pagebuf:: rangeset::
else
    echo "==> miri unavailable (component not installed); skipping"
fi

echo "==> trace determinism (byte-identical trace_json + metrics_csv)"
cargo test -q -p megammap "${PROFILE[@]}" --test trace_determinism

echo "==> mm_trace smoke run (deterministic Perfetto trace)"
cargo build -q -p megammap-bench "${PROFILE[@]}" --bin mm_trace
if [[ "${1:-}" == "--release" ]]; then
    MM_TRACE_BIN=target/release/mm_trace
else
    MM_TRACE_BIN=target/debug/mm_trace
fi
"$MM_TRACE_BIN" > /tmp/mm_trace.ci.a.txt
cp results/mm_trace.perfetto.json /tmp/mm_trace.ci.a.json
"$MM_TRACE_BIN" > /tmp/mm_trace.ci.b.txt
diff -q /tmp/mm_trace.ci.a.txt /tmp/mm_trace.ci.b.txt
diff -q /tmp/mm_trace.ci.a.json results/mm_trace.perfetto.json
python3 -c "import json,sys; d=json.load(open('results/mm_trace.perfetto.json')); sys.exit(0 if d['traceEvents'] else 1)" \
    || { echo "mm_trace emitted an empty or invalid Perfetto trace" >&2; exit 1; }

echo "==> mm_report determinism (byte-identical stdout under real concurrency)"
cargo build -q -p megammap-bench "${PROFILE[@]}" --bin mm_report
if [[ "${1:-}" == "--release" ]]; then
    MM_REPORT_BIN=target/release/mm_report
else
    MM_REPORT_BIN=target/debug/mm_report
fi
# Guards the report's filtering of order-dependent quantities (histogram
# sums, modeled lock waits): only conserved counters may reach stdout.
"$MM_REPORT_BIN" > /tmp/mm_report.ci.a.txt 2> /dev/null
"$MM_REPORT_BIN" > /tmp/mm_report.ci.b.txt 2> /dev/null
diff -q /tmp/mm_report.ci.a.txt /tmp/mm_report.ci.b.txt

echo "==> mm_chaos scenario matrix (fault runs must bit-match fault-free runs)"
cargo build -q -p megammap-chaos "${PROFILE[@]}" --bin mm_chaos
if [[ "${1:-}" == "--release" ]]; then
    MM_CHAOS_BIN=target/release/mm_chaos
else
    MM_CHAOS_BIN=target/debug/mm_chaos
fi
# Same seed twice: every scenario must pass AND stdout must be
# byte-identical (the whole point of virtual-clock fault injection).
"$MM_CHAOS_BIN" > /tmp/mm_chaos.ci.a.txt 2> /dev/null
"$MM_CHAOS_BIN" > /tmp/mm_chaos.ci.b.txt 2> /dev/null
diff -q /tmp/mm_chaos.ci.a.txt /tmp/mm_chaos.ci.b.txt

echo "==> mm_serve QoS scenario (deterministic double run + verdict)"
cargo build -q -p megammap-serve "${PROFILE[@]}" --bin mm_serve
if [[ "${1:-}" == "--release" ]]; then
    MM_SERVE_BIN=target/release/mm_serve
else
    MM_SERVE_BIN=target/debug/mm_serve
fi
# Same seed twice: exit 0 means the QoS verdict passed (interactive fault
# p99 strictly better than --no-qos, budgets held); stdout must be
# byte-identical across the runs (stderr may carry timing diagnostics).
"$MM_SERVE_BIN" > /tmp/mm_serve.ci.a.txt 2> /dev/null
"$MM_SERVE_BIN" > /tmp/mm_serve.ci.b.txt 2> /dev/null
diff -q /tmp/mm_serve.ci.a.txt /tmp/mm_serve.ci.b.txt

echo "==> mm_serve telemetry overhead (< 2% on the serving fast path)"
"$MM_SERVE_BIN" --overhead-check

echo "==> mm_scope observatory (same-seed double run, byte-identical report)"
# The contention/hot-spot report is deterministic by construction
# (barrier-serialized, virtual-time counters only); the binary itself
# exits non-zero unless the seeded hot page tops the heavy-hitter sketch.
cargo build -q --release -p megammap-bench --bin mm_scope
target/release/mm_scope > /tmp/mm_scope.ci.a.txt 2> /dev/null
target/release/mm_scope > /tmp/mm_scope.ci.b.txt 2> /dev/null
diff -q /tmp/mm_scope.ci.a.txt /tmp/mm_scope.ci.b.txt

echo "==> lock-graph cross-check (observed lock edges ⊆ static graph)"
# The static analyzer claims to over-approximate runtime lock nesting;
# this makes the claim falsifiable. mm_scope re-runs with edge observation
# on (stdout is unchanged — verified against the double-run capture above)
# and mm-lint asserts every dynamically observed edge is in the static
# graph. A miss means a summary-builder soundness bug (severed call chain).
target/release/mm_scope --emit-lock-edges /tmp/mm_scope.ci.edges.json > /tmp/mm_scope.ci.c.txt 2> /dev/null
diff -q /tmp/mm_scope.ci.a.txt /tmp/mm_scope.ci.c.txt
cargo run -q -p mm-lint "${PROFILE[@]}" -- --root . crosscheck /tmp/mm_scope.ci.edges.json

echo "==> mm_ann search sweep (deterministic double run + recall floors)"
cargo build -q -p megammap-ann "${PROFILE[@]}" --bin mm_ann
if [[ "${1:-}" == "--release" ]]; then
    MM_ANN_BIN=target/release/mm_ann
else
    MM_ANN_BIN=target/debug/mm_ann
fi
# Exit 0 means the recall floors held (flat recall@10 >= 0.90 at the
# default config, PQ recall@10 >= 0.85 at the smallest pcache cap) and the
# smallest cap showed the flat-thrashes-while-PQ-sustains contrast; stdout
# must be byte-identical across the two runs (virtual time + conserved
# counters only).
"$MM_ANN_BIN" > /tmp/mm_ann.ci.a.txt 2> /dev/null
"$MM_ANN_BIN" > /tmp/mm_ann.ci.b.txt 2> /dev/null
diff -q /tmp/mm_ann.ci.a.txt /tmp/mm_ann.ci.b.txt

echo "==> cargo bench --no-run (benches must compile)"
cargo bench --workspace --no-run

echo "==> bench gate (mm_bench --compare against the committed baseline)"
# Wall-clock floors are only comparable across release builds, so this
# stage always builds mm_bench in release regardless of the CI profile.
# The compare gates: fault path +10%, pcache hit +15%, fault p99 +20%,
# queue-delay p99 +20%, ann PQ search p99 +20%, ann PQ bytes-faulted per
# query +20%, telemetry overhead <= 2% absolute (re-measured with the
# contention profiler compiled in and enabled), weak-scaling efficiency
# >= 0.5 at the largest scale_path point, and the ann_path recall floors
# (flat >= 0.90, PQ >= 0.85).
BASELINE=$(ls BENCH_*.json 2>/dev/null | sort | tail -n 1 || true)
if [[ -z "$BASELINE" ]]; then
    echo "no committed BENCH_<date>.json baseline; skipping bench gate" >&2
else
    cargo build -q --release -p megammap-bench --bin mm_bench
    MM_BENCH_OUT=/tmp/mm_bench.ci.json target/release/mm_bench > /dev/null
    target/release/mm_bench --compare "$BASELINE" /tmp/mm_bench.ci.json
fi

echo "CI gate passed."
