#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the full test suite.
#
# Usage: ./ci.sh [--release]
#
# The workspace flag matters: the repo root is both the `mega-mmap`
# meta-crate and the workspace root, so a bare `cargo test` would only
# run the root package's suites.
set -euo pipefail
cd "$(dirname "$0")"

PROFILE=()
if [[ "${1:-}" == "--release" ]]; then
    PROFILE=(--release)
elif [[ $# -gt 0 ]]; then
    echo "usage: $0 [--release]" >&2
    exit 2
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets "${PROFILE[@]}" -- -D warnings

echo "==> mm-lint (workspace invariants, deny-by-default)"
cargo run -q -p mm-lint "${PROFILE[@]}" -- --root .

echo "==> mm-lint deny (licenses + duplicate versions)"
cargo run -q -p mm-lint "${PROFILE[@]}" -- --root . deny

echo "==> cargo test"
cargo test -q --workspace "${PROFILE[@]}"

echo "==> loom model checks (resource / dlock / page merge)"
cargo test -q -p megammap-sim --features loom-model "${PROFILE[@]}" --test loom_resource
cargo test -q -p megammap-cluster --features loom-model "${PROFILE[@]}" --test loom_dlock
cargo test -q -p megammap-tiered --features loom-model "${PROFILE[@]}" --test loom_page

echo "==> loom model checks (commit-vs-writeback / drain / ownership races)"
cargo test -q -p megammap --features loom-model "${PROFILE[@]}" --lib loom_

if rustup component list 2>/dev/null | grep -q "^miri.*(installed)"; then
    echo "==> miri (pagebuf + rangeset unit tests)"
    cargo miri test -p megammap pagebuf:: rangeset::
else
    echo "==> miri unavailable (component not installed); skipping"
fi

echo "==> trace determinism (byte-identical trace_json + metrics_csv)"
cargo test -q -p megammap "${PROFILE[@]}" --test trace_determinism

echo "==> mm_trace smoke run (deterministic Perfetto trace)"
cargo build -q -p megammap-bench "${PROFILE[@]}" --bin mm_trace
if [[ "${1:-}" == "--release" ]]; then
    MM_TRACE_BIN=target/release/mm_trace
else
    MM_TRACE_BIN=target/debug/mm_trace
fi
"$MM_TRACE_BIN" > /tmp/mm_trace.ci.a.txt
cp results/mm_trace.perfetto.json /tmp/mm_trace.ci.a.json
"$MM_TRACE_BIN" > /tmp/mm_trace.ci.b.txt
diff -q /tmp/mm_trace.ci.a.txt /tmp/mm_trace.ci.b.txt
diff -q /tmp/mm_trace.ci.a.json results/mm_trace.perfetto.json
python3 -c "import json,sys; d=json.load(open('results/mm_trace.perfetto.json')); sys.exit(0 if d['traceEvents'] else 1)" \
    || { echo "mm_trace emitted an empty or invalid Perfetto trace" >&2; exit 1; }

echo "==> mm_chaos scenario matrix (fault runs must bit-match fault-free runs)"
cargo build -q -p megammap-chaos "${PROFILE[@]}" --bin mm_chaos
if [[ "${1:-}" == "--release" ]]; then
    MM_CHAOS_BIN=target/release/mm_chaos
else
    MM_CHAOS_BIN=target/debug/mm_chaos
fi
# Same seed twice: every scenario must pass AND stdout must be
# byte-identical (the whole point of virtual-clock fault injection).
"$MM_CHAOS_BIN" > /tmp/mm_chaos.ci.a.txt 2> /dev/null
"$MM_CHAOS_BIN" > /tmp/mm_chaos.ci.b.txt 2> /dev/null
diff -q /tmp/mm_chaos.ci.a.txt /tmp/mm_chaos.ci.b.txt

echo "==> mm_serve QoS scenario (deterministic double run + verdict)"
cargo build -q -p megammap-serve "${PROFILE[@]}" --bin mm_serve
if [[ "${1:-}" == "--release" ]]; then
    MM_SERVE_BIN=target/release/mm_serve
else
    MM_SERVE_BIN=target/debug/mm_serve
fi
# Same seed twice: exit 0 means the QoS verdict passed (interactive fault
# p99 strictly better than --no-qos, budgets held); stdout must be
# byte-identical across the runs (stderr may carry timing diagnostics).
"$MM_SERVE_BIN" > /tmp/mm_serve.ci.a.txt 2> /dev/null
"$MM_SERVE_BIN" > /tmp/mm_serve.ci.b.txt 2> /dev/null
diff -q /tmp/mm_serve.ci.a.txt /tmp/mm_serve.ci.b.txt

echo "==> mm_serve telemetry overhead (< 2% on the serving fast path)"
"$MM_SERVE_BIN" --overhead-check

echo "==> cargo bench --no-run (benches must compile)"
cargo bench --workspace --no-run

echo "==> bench floor (fault path must stay within 10% of the committed baseline)"
# Wall-clock floors are only comparable across release builds, so this
# stage always builds mm_bench in release regardless of the CI profile.
BASELINE=$(ls BENCH_*.json 2>/dev/null | sort | tail -n 1 || true)
if [[ -z "$BASELINE" ]]; then
    echo "no committed BENCH_<date>.json baseline; skipping bench floor" >&2
else
    cargo build -q --release -p megammap-bench --bin mm_bench
    MM_BENCH_OUT=/tmp/mm_bench.ci.json target/release/mm_bench > /dev/null
    python3 - "$BASELINE" /tmp/mm_bench.ci.json <<'PY'
import json, sys
base = json.load(open(sys.argv[1]))["fault_path"]["fault_from_scache_ns_per_iter"]
now = json.load(open(sys.argv[2]))["fault_path"]["fault_from_scache_ns_per_iter"]
limit = base * 1.10
print(f"fault_from_scache: baseline {base:.1f} ns/iter, this run {now:.1f} ns/iter, limit {limit:.1f}")
if now > limit:
    print(f"FAIL: fault path regressed more than 10% above {sys.argv[1]}", file=sys.stderr)
    sys.exit(1)
PY
fi

echo "CI gate passed."
