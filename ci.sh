#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the full test suite.
#
# Usage: ./ci.sh [--release]
#
# The workspace flag matters: the repo root is both the `mega-mmap`
# meta-crate and the workspace root, so a bare `cargo test` would only
# run the root package's suites.
set -euo pipefail
cd "$(dirname "$0")"

PROFILE=()
if [[ "${1:-}" == "--release" ]]; then
    PROFILE=(--release)
elif [[ $# -gt 0 ]]; then
    echo "usage: $0 [--release]" >&2
    exit 2
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets "${PROFILE[@]}" -- -D warnings

echo "==> cargo test"
cargo test -q --workspace "${PROFILE[@]}"

echo "==> cargo bench --no-run (benches must compile)"
cargo bench --workspace --no-run

echo "CI gate passed."
