//! Gray-Scott reaction-diffusion through the DSM, with checkpointing.
//!
//! The U/V concentration grids are shared vectors backed by the object
//! store; the simulation writes them slab-locally, reads neighbour halos
//! through the coherent shared cache, and the active stager persists
//! checkpoints while the next step computes.
//!
//! Run with: `cargo run --release --example gray_scott`

use mega_mmap::prelude::*;
use mega_mmap::workloads::gray_scott::{mega::MegaGs, GsConfig};

fn main() {
    let cluster = Cluster::new(ClusterSpec::new(2, 2));
    let rt = Runtime::new(&cluster, RuntimeConfig::default());
    let rt2 = rt.clone();
    let cfg = GsConfig::new(48, 8).plotgap(2);

    println!(
        "Gray-Scott: L = {}, {} steps, checkpoint every {} steps, grid = {:.1} MiB",
        cfg.l,
        cfg.steps,
        cfg.plotgap,
        2.0 * cfg.field_bytes() as f64 / (1024.0 * 1024.0)
    );

    let (results, report) = cluster.run(move |p| {
        let job = MegaGs {
            rt: &rt2,
            cfg,
            pcache_bytes: 1 << 20,
            ckpt_url: Some("obj://gs-example/run".into()),
            tag: "example".into(),
        };
        let r = mega_mmap::workloads::gray_scott::mega::run(p, &job);
        if p.rank() == 0 {
            rt2.shutdown(p.now()).expect("final checkpoint");
        }
        p.world().barrier(p);
        r
    });

    let r = &results[0];
    println!("final sums: U = {:.2}, V = {:.4}", r.sum_u, r.sum_v);
    println!("virtual makespan: {:.1} ms", report.makespan_ns as f64 / 1e6);
    let s = rt.stats();
    println!(
        "runtime: {} faults, {} prefetches, {} writer tasks, {:.1} MiB staged out",
        s.faults,
        s.prefetches,
        s.writes,
        s.staged_out as f64 / (1024.0 * 1024.0)
    );
    // The checkpoint exists on the backend with the full grid size.
    let obj = rt
        .backends()
        .open(&mega_mmap::formats::DataUrl::parse("obj://gs-example/run.u0").unwrap())
        .expect("checkpoint object");
    println!("checkpointed U grid: {} bytes", obj.len().unwrap());
    assert_eq!(obj.len().unwrap(), cfg.field_bytes());
    assert!(r.sum_v > 0.0, "the reaction should be alive");
}
