//! Out-of-core distributed sample-sort on a MegaMmap vector.
//!
//! A workload the paper's intro motivates but does not evaluate: sort a
//! dataset larger than the DRAM bound. Each process scans its PGAS slice
//! (read-local), the processes agree on splitters, redistribute through
//! per-bucket **append-only** shared vectors (the same coherence mode as
//! DBSCAN's k-d construction), sort locally, and write the result back
//! write-locally.
//!
//! Run with: `cargo run --release --example out_of_core_sort`

use mega_mmap::prelude::*;
use megammap_cluster::comm::ReduceOp;

const N: u64 = 200_000;

fn main() {
    let cluster = Cluster::new(ClusterSpec::new(2, 2));
    let rt = Runtime::new(&cluster, RuntimeConfig::default());
    let rt2 = rt.clone();

    let (checks, report) = cluster.run(move |p| {
        let world = p.world();
        let nprocs = p.nprocs();
        // The unsorted input, bounded to 256 KiB of DRAM per process.
        let input: MmVec<u64> =
            MmVec::open(&rt2, p, "mem://sort-input", VecOptions::new().len(N).pcache(256 << 10))
                .unwrap();
        input.pgas(p, p.rank(), nprocs);

        // Fill with a deterministic pseudo-random permutation-ish stream.
        let r = input.local_range();
        let tx = input.tx_begin(p, TxKind::seq(r.start, r.end - r.start), Access::WriteLocal);
        for i in input.local_range() {
            input.store(p, &tx, i, mega_mmap::core::tx::splitmix64(i));
        }
        input.tx_end(p, tx);
        world.barrier(p);

        // Splitters: sample locally, gather, take quantiles.
        let tx = input.tx_begin(p, TxKind::rand(7, r.start, r.end - r.start), Access::ReadOnly);
        let sample: Vec<u64> = (0..64)
            .map(|k| input.load(p, &tx, TxKind::rand(7, r.start, r.end - r.start).access_index(k)))
            .collect();
        input.tx_end(p, tx);
        let mut all = world.allgather(p, sample, 8);
        all.sort_unstable();
        let splitters: Vec<u64> = (1..nprocs).map(|b| all[b * all.len() / nprocs]).collect();

        // Redistribute into per-bucket append-only vectors.
        let buckets: Vec<MmVec<u64>> = (0..nprocs)
            .map(|b| {
                MmVec::open(
                    &rt2,
                    p,
                    &format!("mem://sort-bucket-{b}"),
                    VecOptions::new().pcache(256 << 10),
                )
                .unwrap()
            })
            .collect();
        let txs: Vec<_> = buckets
            .iter()
            .map(|bv| bv.tx_begin(p, TxKind::append(0), Access::AppendGlobal))
            .collect();
        let rtx = input.tx_begin(p, TxKind::seq(r.start, r.end - r.start), Access::ReadLocal);
        let mut buf = vec![0u64; 4096];
        let mut i = r.start;
        while i < r.end {
            let n = buf.len().min((r.end - i) as usize);
            input.read_into(p, i, &mut buf[..n]).unwrap();
            for &v in &buf[..n] {
                let b = splitters.partition_point(|&s| s <= v);
                buckets[b].append(p, &txs[b], v);
            }
            i += n as u64;
        }
        input.tx_end(p, rtx);
        for (bv, tx) in buckets.iter().zip(txs) {
            bv.tx_end(p, tx);
        }
        world.barrier(p);

        // Sort my bucket locally and compute its global offset.
        let mine = &buckets[p.rank()];
        let len = mine.len();
        let mut vals = vec![0u64; len as usize];
        let tx = mine.tx_begin(p, TxKind::seq(0, len), Access::ReadOnly);
        mine.read_into(p, 0, &mut vals).unwrap();
        mine.tx_end(p, tx);
        vals.sort_unstable();
        let sizes = world.allgather(p, vec![len], 8);
        let offset: u64 = sizes[..p.rank()].iter().sum();

        // Write the sorted run into the output at its global offset.
        let output: MmVec<u64> =
            MmVec::open(&rt2, p, "mem://sort-output", VecOptions::new().len(N).pcache(256 << 10))
                .unwrap();
        let tx = output.tx_begin(p, TxKind::seq(offset, len), Access::WriteLocal);
        output.write_slice(p, offset, &vals).unwrap();
        output.tx_end(p, tx);
        world.barrier(p);

        // Verify: globally non-decreasing and a preserved checksum.
        let tx = output.tx_begin(p, TxKind::seq(0, N), Access::ReadOnly);
        let mut prev = 0u64;
        let mut sorted = true;
        let mut sum = 0u64;
        let mut buf = vec![0u64; 4096];
        let mut i = 0u64;
        while i < N {
            let n = buf.len().min((N - i) as usize);
            output.read_into(p, i, &mut buf[..n]).unwrap();
            for &v in &buf[..n] {
                sorted &= v >= prev;
                prev = v;
                sum = sum.wrapping_add(v);
            }
            i += n as u64;
        }
        output.tx_end(p, tx);
        let expected: u64 =
            (0..N).fold(0u64, |a, i| a.wrapping_add(mega_mmap::core::tx::splitmix64(i)));
        let all_sorted = world.allreduce_u64(p, &[u64::from(sorted)], ReduceOp::Min)[0] == 1;
        (all_sorted, sum == expected)
    });

    for (rank, (sorted, checksum)) in checks.iter().enumerate() {
        assert!(sorted, "rank {rank} saw unsorted output");
        assert!(checksum, "rank {rank} checksum mismatch");
    }
    println!("sorted {N} elements out-of-core across 4 processes ✔");
    println!("virtual makespan: {:.1} ms", report.makespan_ns as f64 / 1e6);
    println!("runtime stats: {:?}", rt.stats());
}
