//! Out-of-core KMeans‖ on a synthetic cosmology dataset — the paper's
//! Listing 1 workload, end to end:
//!
//! 1. generate a Gadget-like halo dataset and write it as a parquet-style
//!    container on disk,
//! 2. map it as a MegaMmap vector via the `pq://` URL,
//! 3. cluster it with a DRAM bound far below the dataset size,
//! 4. persist the assignments through the stager.
//!
//! Run with: `cargo run --release --example kmeans_clustering`

use mega_mmap::prelude::*;
use mega_mmap::workloads::datagen::{generate, HaloParams};
use mega_mmap::workloads::kmeans::{mega::MegaKMeans, KMeansConfig};

fn main() {
    // Generate halos and store them as a real parquet-like file on disk.
    let dir = std::env::temp_dir().join("mega-mmap-example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let pq_path = dir.join("points.pq");
    let data = generate(HaloParams { n_points: 50_000, n_halos: 8, ..Default::default() });
    data.write_pq(&pq_path).expect("write parquet container");
    println!("dataset: {} points, 8 halos, at {}", data.points.len(), pq_path.display());

    let cluster = Cluster::new(ClusterSpec::new(2, 2));
    let rt = Runtime::new(&cluster, RuntimeConfig::default());
    let rt2 = rt.clone();
    let url = format!("pq://{}", pq_path.display());
    let assign_path = dir.join("assignments.bin");
    let assign_url = format!("file://{}", assign_path.display());
    let a2 = assign_url.clone();

    let (results, report) = cluster.run(move |p| {
        let job = MegaKMeans {
            rt: &rt2,
            url: url.clone(),
            assign_url: Some(a2.clone()),
            cfg: KMeansConfig { k: 8, max_iter: 4, ..Default::default() },
            // Listing 1: `pts.BoundMemory(MEGABYTES(1))`.
            pcache_bytes: 1 << 20,
        };
        let r = mega_mmap::workloads::kmeans::mega::run(p, &job);
        if p.rank() == 0 {
            rt2.shutdown(p.now()).expect("final stage-out");
        }
        p.world().barrier(p);
        r
    });

    let r = &results[0];
    println!("inertia: {:.1}", r.inertia);
    println!("centroids:");
    for k in &r.centroids {
        println!("  ({:8.2}, {:8.2}, {:8.2})", k.x, k.y, k.z);
    }
    // Each true halo center should have a centroid nearby.
    let mut worst = 0.0f32;
    for c in &data.centers {
        let d = r.centroids.iter().map(|k| k.dist(c)).fold(f32::INFINITY, f32::min);
        worst = worst.max(d);
    }
    println!("worst centroid-to-halo distance: {worst:.2} (halo sigma = 4.0)");
    println!(
        "assignments persisted: {} bytes at {}",
        std::fs::metadata(&assign_path).map(|m| m.len()).unwrap_or(0),
        assign_path.display()
    );
    println!("virtual makespan: {:.1} ms", report.makespan_ns as f64 / 1e6);
    assert!(worst < 6.0, "clustering should recover the halos");
}
