//! Quickstart: the Listing-1 experience in five minutes.
//!
//! Deploys a 2-node simulated cluster with the MegaMmap runtime, creates a
//! persistent shared vector, writes it from every process under a
//! Write-Local transaction, re-reads it globally, bounds the memory, and
//! persists it through the stager.
//!
//! Run with: `cargo run --release --example quickstart`

use mega_mmap::prelude::*;

fn main() {
    // A 2-node x 2-process simulated cluster with virtual-time hardware.
    let cluster = Cluster::new(ClusterSpec::new(2, 2));
    let rt = Runtime::new(&cluster, RuntimeConfig::default());
    let rt2 = rt.clone();

    let (sums, report) = cluster.run(move |p| {
        // Create (or attach to) a shared vector named by a URL. The obj://
        // scheme is the S3-like object store; file:// and hdf5:// work the
        // same way.
        let v: MmVec<f64> = MmVec::open(
            &rt2,
            p,
            "obj://quickstart/data.bin",
            VecOptions::new().len(100_000).pcache(1 << 20),
        )
        .expect("create vector");

        // PGAS partitioning: each process owns a block (Listing 1's
        // `pts.Pgas(rank, nprocs)`).
        v.pgas(p, p.rank(), p.nprocs());

        // Write-Local transaction: non-overlapping partitions, so caches
        // are naturally coherent and evictions ship only the diffs.
        let range = v.local_range();
        let tx =
            v.tx_begin(p, TxKind::seq(range.start, range.end - range.start), Access::WriteLocal);
        for i in v.local_range() {
            v.store(p, &tx, i, (i as f64).sqrt());
        }
        v.tx_end(p, tx);
        p.world().barrier(p);

        // Read-Only transaction over the *whole* vector: pages fault in
        // from the tiered shared cache, replicate locally, and the
        // prefetcher (paper Algorithm 1) runs ahead of the scan.
        let tx = v.tx_begin(p, TxKind::seq(0, v.len()), Access::ReadOnly);
        let mut buf = vec![0.0f64; 4096];
        let mut sum = 0.0f64;
        let mut i = 0u64;
        while i < v.len() {
            let n = buf.len().min((v.len() - i) as usize);
            v.read_into(p, i, &mut buf[..n]).expect("bulk read");
            sum += buf[..n].iter().sum::<f64>();
            i += n as u64;
        }
        v.tx_end(p, tx);

        // Persist to the backend (msync-style, waits for the stager).
        if p.rank() == 0 {
            v.flush_wait(p).expect("persist");
        }
        p.world().barrier(p);
        sum
    });

    println!("per-process global sums: {sums:?}");
    println!("virtual makespan: {:.3} ms", report.makespan_ns as f64 / 1e6);
    println!("runtime stats: {:?}", rt.stats());
    assert!(sums.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-6));
    println!("every process saw the same coherent data ✔");
}
