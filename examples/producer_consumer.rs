//! Producer/consumer phases over one shared vector.
//!
//! The paper's coherence section calls out "coordinated [apps], where data
//! structures are read and modified in well-defined phases (e.g.,
//! producer-consumer workflows)". Here half the processes *produce*
//! (append-only global), a barrier changes the phase, and everyone
//! *consumes* (read-only global) — demonstrating phase transitions with
//! replica invalidation and the collective read hint.
//!
//! Run with: `cargo run --release --example producer_consumer`

use mega_mmap::prelude::*;

fn main() {
    let cluster = Cluster::new(ClusterSpec::new(2, 2));
    let rt = Runtime::new(&cluster, RuntimeConfig::default());
    let rt2 = rt.clone();

    let (sums, report) = cluster.run(move |p| {
        let world = p.world();
        let log: MmVec<u64> =
            MmVec::open(&rt2, p, "mem://event-log", VecOptions::new().pcache(512 << 10)).unwrap();

        // Phase 1 — producers append events (Append-Only Global: ordered
        // asynchronous writer tasks, no read traffic).
        if p.rank() % 2 == 0 {
            let tx = log.tx_begin(p, TxKind::append(0), Access::AppendGlobal);
            for k in 0..10_000u64 {
                log.append(p, &tx, p.rank() as u64 * 1_000_000 + k);
            }
            log.tx_end(p, tx);
        }
        world.barrier(p); // the phase boundary

        // Phase 2 — everyone consumes (Read-Only Global: pages replicate
        // into each node's shared-cache shard; the Collective hint fans the
        // distribution out as a tree instead of per-process unicast).
        let len = log.len();
        let tx = log.tx_begin_collective(p, TxKind::seq(0, len), Access::ReadOnly, p.nprocs());
        let mut buf = vec![0u64; 4096];
        let mut sum = 0u64;
        let mut i = 0u64;
        while i < len {
            let n = buf.len().min((len - i) as usize);
            log.read_into(p, i, &mut buf[..n]).unwrap();
            sum = buf[..n].iter().fold(sum, |a, &v| a.wrapping_add(v));
            i += n as u64;
        }
        log.tx_end(p, tx);
        // Phase boundary! "Coherence in MegaMmap is mainly the
        // responsibility of the application programmer using
        // synchronization points such as barriers": without this barrier,
        // rank 0 would enter the write phase while others still read.
        world.barrier(p);

        // Phase 3 — a writer phase invalidates the read replicas before
        // mutating (phase-change coherence).
        if p.rank() == 0 {
            let tx = log.tx_begin(p, TxKind::seq(0, 1), Access::WriteGlobal);
            log.store(p, &tx, 0, 42);
            log.tx_end(p, tx);
        }
        world.barrier(p);
        sum
    });

    assert!(sums.windows(2).all(|w| w[0] == w[1]), "all consumers saw identical data");
    println!("20000 events produced by 2 producers, consumed by 4 processes ✔");
    println!("checksum (all ranks agree): {}", sums[0]);
    let s = rt.stats();
    println!(
        "replicas invalidated on the write phase: {} | remote reads: {} | local reads: {}",
        s.invalidations, s.remote_reads, s.local_reads
    );
    println!("virtual makespan: {:.1} ms", report.makespan_ns as f64 / 1e6);
}
